// Unit tests for the cluster spec, cost model, and address spaces.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/units.h"
#include "machine/address_space.h"
#include "machine/spec.h"

namespace dpu::machine {
namespace {

ClusterSpec spec_16x32() {
  ClusterSpec s;
  s.nodes = 16;
  s.host_procs_per_node = 32;
  s.proxies_per_dpu = 4;
  return s;
}

TEST(ClusterSpec, RankCounts) {
  auto s = spec_16x32();
  EXPECT_EQ(s.total_host_ranks(), 512);
  EXPECT_EQ(s.total_proxies(), 64);
  EXPECT_EQ(s.total_procs(), 576);
}

TEST(ClusterSpec, HostProxyPartition) {
  auto s = spec_16x32();
  EXPECT_TRUE(s.is_host(0));
  EXPECT_TRUE(s.is_host(511));
  EXPECT_FALSE(s.is_host(512));
  EXPECT_TRUE(s.is_proxy(512));
  EXPECT_TRUE(s.is_proxy(575));
  EXPECT_FALSE(s.is_proxy(576));
}

TEST(ClusterSpec, NodeAssignment) {
  auto s = spec_16x32();
  EXPECT_EQ(s.node_of(0), 0);
  EXPECT_EQ(s.node_of(31), 0);
  EXPECT_EQ(s.node_of(32), 1);
  EXPECT_EQ(s.node_of(511), 15);
  EXPECT_EQ(s.node_of(512), 0);   // first proxy on node 0
  EXPECT_EQ(s.node_of(516), 1);   // proxies_per_dpu = 4
  EXPECT_EQ(s.node_of(575), 15);
}

TEST(ClusterSpec, CoreKinds) {
  auto s = spec_16x32();
  EXPECT_EQ(s.core_kind(5), CoreKind::kHost);
  EXPECT_EQ(s.core_kind(520), CoreKind::kDpu);
}

TEST(ClusterSpec, ProxyMappingFollowsPaperFormula) {
  auto s = spec_16x32();
  // proxy_local_rank = host_source_rank % num_proxies_per_dpu, on the
  // host's own node.
  for (int rank : {0, 1, 4, 37, 511}) {
    const int proxy = s.proxy_for_host(rank);
    EXPECT_TRUE(s.is_proxy(proxy));
    EXPECT_EQ(s.node_of(proxy), s.node_of(rank));
    const int local = (proxy - s.total_host_ranks()) % s.proxies_per_dpu;
    EXPECT_EQ(local, rank % s.proxies_per_dpu);
  }
}

TEST(ClusterSpec, ProxyIdInverse) {
  auto s = spec_16x32();
  for (int node = 0; node < s.nodes; ++node) {
    for (int local = 0; local < s.proxies_per_dpu; ++local) {
      const int p = s.proxy_id(node, local);
      EXPECT_TRUE(s.is_proxy(p));
      EXPECT_EQ(s.node_of(p), node);
    }
  }
}

TEST(CostModel, DpuPostOverheadIsSlower) {
  CostModel c;
  EXPECT_GT(c.post_overhead(CoreKind::kDpu), c.post_overhead(CoreKind::kHost));
}

TEST(CostModel, WireTimeScalesLinearly) {
  CostModel c;
  EXPECT_EQ(c.wire_time(0), 0u);
  EXPECT_NEAR(static_cast<double>(c.wire_time(2_MiB)),
              2.0 * static_cast<double>(c.wire_time(1_MiB)), 2000.0);
}

TEST(CostModel, RegistrationGrowsWithPagesAndIsSlowOnDpu) {
  CostModel c;
  const auto small_host = c.reg_time(4_KiB, CoreKind::kHost);
  const auto big_host = c.reg_time(1_MiB, CoreKind::kHost);
  EXPECT_GT(big_host, small_host);
  EXPECT_GT(c.reg_time(1_MiB, CoreKind::kDpu), big_host);
  // GVMI registration strictly costlier than plain IB registration.
  EXPECT_GT(c.gvmi_reg_time(64_KiB, CoreKind::kHost), c.reg_time(64_KiB, CoreKind::kHost));
}

TEST(AddressSpace, AllocAndBounds) {
  AddressSpace as;
  const Addr a = as.alloc(100);
  EXPECT_TRUE(as.contains(a, 100));
  EXPECT_TRUE(as.contains(a + 50, 50));
  EXPECT_FALSE(as.contains(a + 50, 51));
  EXPECT_FALSE(as.contains(a - 1, 1));
  EXPECT_FALSE(as.contains(a, 0));
}

TEST(AddressSpace, DistinctBuffersDoNotOverlap) {
  AddressSpace as;
  const Addr a = as.alloc(4096);
  const Addr b = as.alloc(4096);
  EXPECT_NE(a, b);
  EXPECT_FALSE(as.contains(a, static_cast<std::size_t>(b - a) + 1));
}

TEST(AddressSpace, BackedReadWriteRoundTrip) {
  AddressSpace as;
  const Addr a = as.alloc(256, /*backed=*/true);
  auto payload = pattern_bytes(3, 256);
  as.write(a, payload);
  EXPECT_EQ(as.read(a, 256), payload);
  // Partial read at an offset.
  auto part = as.read(a + 10, 20);
  EXPECT_TRUE(std::equal(part.begin(), part.end(), payload.begin() + 10));
}

TEST(AddressSpace, UnbackedBuffersAreTimingOnly) {
  AddressSpace as;
  const Addr a = as.alloc(64, /*backed=*/false);
  EXPECT_FALSE(as.backed(a));
  auto payload = pattern_bytes(1, 64);
  EXPECT_NO_THROW(as.write(a, payload));
  EXPECT_TRUE(as.read(a, 64).empty());
}

TEST(AddressSpace, OutOfBoundsAccessThrows) {
  AddressSpace as;
  const Addr a = as.alloc(64);
  EXPECT_THROW(as.read(a, 65), std::logic_error);
  EXPECT_THROW(as.read(a + 64, 1), std::logic_error);
  EXPECT_THROW((void)as.read(Addr{1}, 1), std::logic_error);
}

TEST(AddressSpace, CopyBetweenSpaces) {
  AddressSpace src;
  AddressSpace dst;
  const Addr a = src.alloc(128);
  const Addr b = dst.alloc(128);
  auto payload = pattern_bytes(9, 128);
  src.write(a, payload);
  AddressSpace::copy(src, a, dst, b, 128);
  EXPECT_EQ(dst.read(b, 128), payload);
}

TEST(AddressSpace, CopyWithUnbackedSideIsNoop) {
  AddressSpace src;
  AddressSpace dst;
  const Addr a = src.alloc(32, /*backed=*/false);
  const Addr b = dst.alloc(32, /*backed=*/true);
  EXPECT_NO_THROW(AddressSpace::copy(src, a, dst, b, 32));
  EXPECT_EQ(dst.read(b, 32), std::vector<std::byte>(32, std::byte{0}));
}

TEST(AddressSpace, ReleaseInvalidatesBuffer) {
  AddressSpace as;
  const Addr a = as.alloc(64);
  as.release(a);
  EXPECT_FALSE(as.contains(a, 1));
  EXPECT_THROW(as.release(a), std::logic_error);
}

TEST(AddressSpace, ZeroLengthAllocRejected) {
  AddressSpace as;
  EXPECT_THROW(as.alloc(0), std::logic_error);
}

}  // namespace
}  // namespace dpu::machine
