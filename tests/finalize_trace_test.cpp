// Tests for Finalize_Offload (clean proxy shutdown, Listing 2) and the
// trace integration (fig. 1 timelines).
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/bytes.h"
#include "common/units.h"
#include "harness/world.h"

namespace dpu {
namespace {

using harness::Rank;
using harness::World;

machine::ClusterSpec spec_of(int nodes, int ppn, int proxies = 1) {
  machine::ClusterSpec s;
  s.nodes = nodes;
  s.host_procs_per_node = ppn;
  s.proxies_per_dpu = proxies;
  return s;
}

TEST(Finalize, ProxiesExitAfterAllHostsFinalize) {
  World w(spec_of(2, 2, 1));
  w.launch_all([&](Rank& r) -> sim::Task<void> {
    const int peer = (r.rank + 2) % 4;
    const std::size_t len = 8_KiB;
    const auto s = r.mem().alloc(len);
    const auto d = r.mem().alloc(len);
    r.mem().write(s, pattern_bytes(static_cast<std::uint64_t>(r.rank), len));
    auto qs = co_await r.off->send_offload(s, len, peer, 0);
    auto qr = co_await r.off->recv_offload(d, len, peer, 0);
    EXPECT_EQ(co_await r.off->wait(qs), offload::Status::kOk);
    EXPECT_EQ(co_await r.off->wait(qr), offload::Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(d, len), static_cast<std::uint64_t>(peer)));
    EXPECT_EQ(co_await r.off->finalize(), offload::Status::kOk);
  });
  w.run();
  // Offload proxies ended; only the (never-finalized) BluesMPI workers may
  // remain parked.
  for (const auto& name : w.engine().live_process_names()) {
    EXPECT_EQ(name.rfind("blues", 0), 0u) << name;
  }
}

TEST(Finalize, ProxyWaitsForSlowestMappedHost) {
  // Two hosts share one proxy; the proxy must not exit after the first
  // host's finalize while the second still has traffic in flight.
  World w(spec_of(2, 2, 1));
  w.launch_all([&](Rank& r) -> sim::Task<void> {
    const int peer = (r.rank + 2) % 4;
    const std::size_t len = 16_KiB;
    const auto s = r.mem().alloc(len, false);
    const auto d = r.mem().alloc(len, false);
    if (r.rank % 2 == 1) co_await r.compute(2_ms);  // odd ranks start late
    auto qs = co_await r.off->send_offload(s, len, peer, 0);
    auto qr = co_await r.off->recv_offload(d, len, peer, 0);
    EXPECT_EQ(co_await r.off->wait(qs), offload::Status::kOk);
    EXPECT_EQ(co_await r.off->wait(qr), offload::Status::kOk);
    EXPECT_EQ(co_await r.off->finalize(), offload::Status::kOk);
  });
  EXPECT_NO_THROW(w.run());
}

TEST(TraceIntegration, RecordsComputeAndWireSpans) {
  World w(spec_of(2, 1, 1));
  auto& trace = w.enable_trace();
  w.launch_all([&](Rank& r) -> sim::Task<void> {
    const std::size_t len = 64_KiB;
    const int peer = 1 - r.rank;
    const auto s = r.mem().alloc(len, false);
    const auto d = r.mem().alloc(len, false);
    auto qs = co_await r.mpi->isend(s, len, peer, 0);
    auto qr = co_await r.mpi->irecv(d, len, peer, 0);
    co_await r.compute(500_us);
    co_await r.mpi->wait(qr);
    co_await r.mpi->wait(qs);
  });
  w.run();
  const auto& spans = trace.spans();
  EXPECT_FALSE(spans.empty());
  const bool has_compute = std::any_of(spans.begin(), spans.end(), [](const auto& s) {
    return s.category == "compute" && s.actor.rfind("host:", 0) == 0;
  });
  const bool has_wire = std::any_of(spans.begin(), spans.end(), [](const auto& s) {
    return s.category == "xfer" && s.actor.rfind("wire:", 0) == 0;
  });
  EXPECT_TRUE(has_compute);
  EXPECT_TRUE(has_wire);
  // And it renders.
  std::ostringstream os;
  trace.print_timeline(os, 60);
  EXPECT_NE(os.str().find("host:0"), std::string::npos);
}

TEST(TraceIntegration, DisabledByDefaultCostsNothing) {
  World w(spec_of(2, 1, 1));
  EXPECT_EQ(w.engine().trace(), nullptr);
  w.launch_all([&](Rank& r) -> sim::Task<void> { co_await r.compute(1_us); });
  EXPECT_NO_THROW(w.run());
}

}  // namespace
}  // namespace dpu
