// Cross-module integration and property tests:
//  * bit-determinism of whole-cluster runs,
//  * fabric byte conservation,
//  * randomized traffic soak (seeded) exercising the matcher under chaos,
//  * performance-ordering invariants between the three libraries,
//  * mixed minimpi + offload usage in one program.
#include <gtest/gtest.h>

#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/units.h"
#include "harness/world.h"
#include "offload/coll.h"

namespace dpu {
namespace {

using harness::Rank;
using harness::World;

machine::ClusterSpec spec_of(int nodes, int ppn, int proxies = 2) {
  machine::ClusterSpec s;
  s.nodes = nodes;
  s.host_procs_per_node = ppn;
  s.proxies_per_dpu = proxies;
  return s;
}

SimTime run_mixed_workload() {
  World w(spec_of(2, 2));
  w.launch_all([&](Rank& r) -> sim::Task<void> {
    const int n = r.world->spec().total_host_ranks();
    const int peer = (r.rank + n / 2) % n;
    const std::size_t len = 24_KiB;
    const auto s = r.mem().alloc(len);
    const auto d = r.mem().alloc(len);
    r.mem().write(s, pattern_bytes(static_cast<std::uint64_t>(r.rank), len));
    // Offloaded exchange with the cross-node peer.
    auto qs = co_await r.off->send_offload(s, len, peer, 0);
    auto qr = co_await r.off->recv_offload(d, len, peer, 0);
    co_await r.compute(100_us);
    EXPECT_EQ(co_await r.off->wait(qs), offload::Status::kOk);
    EXPECT_EQ(co_await r.off->wait(qr), offload::Status::kOk);
    // Then an MPI collective on top.
    co_await r.mpi->barrier(*r.world->mpi().world());
    const auto bbuf = r.mem().alloc(4_KiB);
    if (r.rank == 0) r.mem().write(bbuf, pattern_bytes(9, 4_KiB));
    co_await r.mpi->bcast(bbuf, 4_KiB, 0, *r.world->mpi().world());
    EXPECT_TRUE(check_pattern(r.mem().read(bbuf, 4_KiB), 9));
    EXPECT_TRUE(check_pattern(r.mem().read(d, len), static_cast<std::uint64_t>(peer)));
  });
  w.run();
  return w.now();
}

TEST(Integration, MixedMpiAndOffloadInOneProgram) {
  EXPECT_GT(run_mixed_workload(), 0u);
}

TEST(Integration, RunsAreBitDeterministic) {
  // The same workload must produce the exact same virtual end time (and by
  // construction the same event sequence) on every run.
  const SimTime a = run_mixed_workload();
  const SimTime b = run_mixed_workload();
  const SimTime c = run_mixed_workload();
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

TEST(Integration, FabricConservesBytes) {
  World w(spec_of(3, 2));
  w.launch_all([&](Rank& r) -> sim::Task<void> {
    const int n = r.world->spec().total_host_ranks();
    const std::size_t b = 8_KiB;
    const auto nn = static_cast<std::size_t>(n);
    const auto sbuf = r.mem().alloc(b * nn, false);
    const auto rbuf = r.mem().alloc(b * nn, false);
    co_await r.mpi->alltoall(sbuf, rbuf, b, *r.world->mpi().world());
  });
  w.run();
  std::uint64_t tx = 0;
  std::uint64_t rx = 0;
  std::uint64_t msg_tx = 0;
  std::uint64_t msg_rx = 0;
  for (int node = 0; node < w.spec().nodes; ++node) {
    tx += w.fab().stats(node).bytes_tx;
    rx += w.fab().stats(node).bytes_rx;
    msg_tx += w.fab().stats(node).messages_tx;
    msg_rx += w.fab().stats(node).messages_rx;
  }
  // PCIe (same-node) transfers count only on the TX side; wire transfers on
  // both. Hence rx <= tx and every wire byte received was sent.
  EXPECT_LE(rx, tx);
  EXPECT_GT(msg_tx, 0u);
  EXPECT_LE(msg_rx, msg_tx);
}

struct SoakCase {
  std::uint64_t seed;
};

class RandomTrafficSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTrafficSoak, AllMessagesMatchAndVerify) {
  // Deterministic random pattern: every rank sends a known multiset of
  // messages; every destination posts matching receives in a shuffled
  // order. Exercises unexpected queues, tag isolation, eager+rendezvous
  // mixes, and intra/inter-node paths at once.
  const std::uint64_t seed = GetParam();
  World w(spec_of(3, 2));
  const int n = w.spec().total_host_ranks();
  const int msgs_per_rank = 12;

  // Precompute the global pattern (same on every "rank" — mirrors how the
  // test harness would distribute a schedule).
  struct M {
    int src, dst, tag;
    std::size_t len;
    std::uint64_t pat;
  };
  std::vector<M> all;
  Rng rng(seed);
  for (int s = 0; s < n; ++s) {
    for (int k = 0; k < msgs_per_rank; ++k) {
      M m;
      m.src = s;
      m.dst = static_cast<int>(rng.below(static_cast<std::uint64_t>(n)));
      if (m.dst == s) m.dst = (m.dst + 1) % n;
      m.tag = static_cast<int>(rng.below(5));
      // Length must be a function of (src,dst,tag): same-key messages match
      // FIFO in minimpi (as in MPI), so they must fit the same buffers.
      m.len = std::size_t{256}
              << (static_cast<std::uint64_t>(m.src * 31 + m.dst * 7 + m.tag) % 10);
      std::uint64_t sm = seed;
      m.pat = splitmix64(sm) ^ (static_cast<std::uint64_t>(s) << 32) ^
              static_cast<std::uint64_t>(k);
      all.push_back(m);
    }
  }

  int verified = 0;
  w.launch_all([&, n](Rank& r) -> sim::Task<void> {
    // Post all receives for messages destined to me (shuffled), then send
    // mine, then wait for everything.
    std::vector<const M*> mine_in;
    std::vector<const M*> mine_out;
    for (const auto& m : all) {
      if (m.dst == r.rank) mine_in.push_back(&m);
      if (m.src == r.rank) mine_out.push_back(&m);
    }
    Rng shuffle_rng(seed ^ static_cast<std::uint64_t>(r.rank));
    for (std::size_t i = mine_in.size(); i > 1; --i) {
      std::swap(mine_in[i - 1], mine_in[shuffle_rng.below(i)]);
    }
    std::vector<mpi::Request> reqs;
    std::vector<std::pair<machine::Addr, const M*>> bufs;
    // Receives must disambiguate multiple same-(src,tag) messages by FIFO;
    // post in per-(src,tag) program order within the shuffle.
    for (const M* m : mine_in) {
      const auto buf = r.mem().alloc(m->len);
      bufs.emplace_back(buf, m);
      reqs.push_back(co_await r.mpi->irecv(buf, m->len, m->src, m->tag));
    }
    for (const M* m : mine_out) {
      const auto buf = r.mem().alloc(m->len);
      r.mem().write(buf, pattern_bytes(m->pat, m->len));
      reqs.push_back(co_await r.mpi->isend(buf, m->len, m->dst, m->tag));
    }
    co_await r.mpi->waitall(reqs);
    // FIFO per (src,tag): the k-th posted recv for a key got the k-th sent
    // message for that key. Verify multiset equality of payload hashes per
    // (src,tag) instead of exact order.
    std::map<std::pair<int, int>, std::multiset<std::vector<std::byte>>> got;
    std::map<std::pair<int, int>, std::multiset<std::vector<std::byte>>> want;
    for (auto& [buf, m] : bufs) {
      got[{m->src, m->tag}].insert(r.mem().read(buf, m->len));
    }
    for (const M* m : mine_in) {
      want[{m->src, m->tag}].insert(pattern_bytes(m->pat, m->len));
    }
    EXPECT_EQ(got, want) << "rank " << r.rank;
    ++verified;
  });
  w.run();
  EXPECT_EQ(verified, n);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTrafficSoak,
                         ::testing::Values(1ull, 42ull, 1337ull, 0xDEADBEEFull),
                         [](const ::testing::TestParamInfo<std::uint64_t>& i) {
                           return "seed" + std::to_string(i.index);
                         });

TEST(Integration, ProposedCommBeatsStagedCommWhenWarm) {
  // Performance-ordering invariant behind figs 4/13: once both are warm,
  // the direct GVMI path is faster than the staged path for the same
  // pairwise exchange.
  for (std::size_t bpr : {16_KiB, 128_KiB, 512_KiB}) {
    SimDuration blues_t = 0;
    SimDuration prop_t = 0;
    {
      World w(spec_of(2, 1));
      w.launch_all([&, bpr](Rank& r) -> sim::Task<void> {
        const auto s = r.mem().alloc(bpr * 2, false);
        const auto d = r.mem().alloc(bpr * 2, false);
        SimTime t0 = 0;
        for (int i = 0; i < 3; ++i) {
          t0 = r.world->now();
          auto q = co_await r.blues->ialltoall(s, d, bpr, r.world->mpi().world());
          co_await r.blues->wait(q);
        }
        if (r.rank == 0) blues_t = r.world->now() - t0;
      });
      w.run();
    }
    {
      World w(spec_of(2, 1));
      w.launch_all([&, bpr](Rank& r) -> sim::Task<void> {
        const auto s = r.mem().alloc(bpr * 2, false);
        const auto d = r.mem().alloc(bpr * 2, false);
        offload::GroupAlltoall a2a(*r.off, *r.mpi);
        SimTime t0 = 0;
        for (int i = 0; i < 3; ++i) {
          t0 = r.world->now();
          auto q = co_await a2a.icall(s, d, bpr, r.world->mpi().world());
          EXPECT_EQ(co_await a2a.wait(q), offload::Status::kOk);
        }
        if (r.rank == 0) prop_t = r.world->now() - t0;
      });
      w.run();
    }
    EXPECT_LT(prop_t, blues_t) << "bpr " << bpr;
  }
}

TEST(Integration, OffloadOverlapSuperiorToHostMpiRendezvous) {
  // The core thesis as a single invariant: with ample compute, an offloaded
  // transfer costs ~zero extra wall time; an MPI rendezvous costs its full
  // latency after the compute.
  const std::size_t len = 512_KiB;
  const SimDuration compute = 10_ms;
  SimDuration mpi_total = 0;
  SimDuration off_total = 0;
  {
    World w(spec_of(2, 1));
    w.launch_all([&](Rank& r) -> sim::Task<void> {
      const int peer = 1 - r.rank;
      const auto s = r.mem().alloc(len, false);
      const auto d = r.mem().alloc(len, false);
      auto qs = co_await r.mpi->isend(s, len, peer, 0);
      auto qr = co_await r.mpi->irecv(d, len, peer, 0);
      co_await r.compute(compute);
      co_await r.mpi->wait(qr);
      co_await r.mpi->wait(qs);
      if (r.rank == 0) mpi_total = r.world->now();
    });
    w.run();
  }
  {
    World w(spec_of(2, 1));
    w.launch_all([&](Rank& r) -> sim::Task<void> {
      const int peer = 1 - r.rank;
      const auto s = r.mem().alloc(len, false);
      const auto d = r.mem().alloc(len, false);
      auto qs = co_await r.off->send_offload(s, len, peer, 0);
      auto qr = co_await r.off->recv_offload(d, len, peer, 0);
      co_await r.compute(compute);
      EXPECT_EQ(co_await r.off->wait(qs), offload::Status::kOk);
      EXPECT_EQ(co_await r.off->wait(qr), offload::Status::kOk);
      if (r.rank == 0) off_total = r.world->now();
    });
    w.run();
  }
  EXPECT_LT(off_total, mpi_total);
  EXPECT_LT(to_us(off_total) - to_us(compute), 100.0);  // hidden in compute
}

}  // namespace
}  // namespace dpu
