// Tests for the second wave of minimpi collectives: gather, scatter,
// reduce_sum, sendrecv.
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/units.h"
#include "fabric/fabric.h"
#include "machine/spec.h"
#include "mpi/mpi.h"
#include "sim/engine.h"
#include "verbs/verbs.h"

namespace dpu::mpi {
namespace {

struct MpiFixture {
  machine::ClusterSpec spec;
  sim::Engine eng;
  std::unique_ptr<fabric::Fabric> fab;
  std::unique_ptr<verbs::Runtime> vrt;
  std::unique_ptr<MpiWorld> mw;

  explicit MpiFixture(int nodes, int ppn) {
    spec.nodes = nodes;
    spec.host_procs_per_node = ppn;
    spec.proxies_per_dpu = 1;
    fab = std::make_unique<fabric::Fabric>(eng, spec);
    vrt = std::make_unique<verbs::Runtime>(eng, spec, *fab);
    mw = std::make_unique<MpiWorld>(*vrt);
  }

  static sim::Task<void> invoke(std::function<sim::Task<void>(MpiCtx&)> prog, MpiCtx& ctx) {
    co_await prog(ctx);
  }

  void launch_all(std::function<sim::Task<void>(MpiCtx&)> prog) {
    for (int r = 0; r < spec.total_host_ranks(); ++r) {
      eng.spawn(invoke(prog, mw->ctx(r)), "rank" + std::to_string(r));
    }
  }

  void run_ok() { ASSERT_EQ(eng.run(), sim::RunResult::kCompleted); }
};

TEST(Gather, RootCollectsEveryBlock) {
  for (int root : {0, 3}) {
    MpiFixture f(2, 2);
    const int n = 4;
    f.launch_all([&, root](MpiCtx& ctx) -> sim::Task<void> {
      const std::size_t b = 2_KiB;
      const auto sbuf = ctx.vctx().mem().alloc(b);
      ctx.vctx().mem().write(sbuf, pattern_bytes(static_cast<std::uint64_t>(ctx.rank()), b));
      machine::Addr rbuf = 0;
      if (ctx.rank() == root) rbuf = ctx.vctx().mem().alloc(b * n);
      co_await ctx.gather(sbuf, rbuf, b, root, *f.mw->world());
      if (ctx.rank() == root) {
        for (int s = 0; s < n; ++s) {
          EXPECT_TRUE(
              check_pattern(ctx.vctx().mem().read(rbuf + static_cast<machine::Addr>(s) * b, b),
                            static_cast<std::uint64_t>(s)))
              << "root " << root << " block " << s;
        }
      }
    });
    f.run_ok();
  }
}

TEST(Scatter, EveryRankGetsItsBlock) {
  MpiFixture f(3, 1);
  const int n = 3;
  f.launch_all([&, n](MpiCtx& ctx) -> sim::Task<void> {
    const std::size_t b = 1_KiB;
    machine::Addr sbuf = 0;
    if (ctx.rank() == 0) {
      sbuf = ctx.vctx().mem().alloc(b * n);
      for (int d = 0; d < n; ++d) {
        ctx.vctx().mem().write(sbuf + static_cast<machine::Addr>(d) * b,
                               pattern_bytes(static_cast<std::uint64_t>(100 + d), b));
      }
    }
    const auto rbuf = ctx.vctx().mem().alloc(b);
    co_await ctx.scatter(sbuf, rbuf, b, 0, *f.mw->world());
    EXPECT_TRUE(check_pattern(ctx.vctx().mem().read(rbuf, b),
                              static_cast<std::uint64_t>(100 + ctx.rank())));
  });
  f.run_ok();
}

TEST(ReduceSum, RootGetsElementwiseSum) {
  MpiFixture f(2, 2);
  f.launch_all([&](MpiCtx& ctx) -> sim::Task<void> {
    const std::size_t count = 8;
    const std::size_t bytes = count * sizeof(double);
    const auto sbuf = ctx.vctx().mem().alloc(bytes);
    std::vector<std::byte> raw(bytes);
    for (std::size_t i = 0; i < count; ++i) {
      const double v = static_cast<double>(ctx.rank()) + static_cast<double>(i) * 0.5;
      std::memcpy(raw.data() + i * sizeof(double), &v, sizeof(double));
    }
    ctx.vctx().mem().write(sbuf, raw);
    machine::Addr rbuf = 0;
    if (ctx.rank() == 0) rbuf = ctx.vctx().mem().alloc(bytes);
    co_await ctx.reduce_sum(sbuf, rbuf, count, 0, *f.mw->world());
    if (ctx.rank() == 0) {
      auto out = ctx.vctx().mem().read(rbuf, bytes);
      for (std::size_t i = 0; i < count; ++i) {
        double got;
        std::memcpy(&got, out.data() + i * sizeof(double), sizeof(double));
        // sum over ranks r of (r + 0.5 i) = 6 + 4*0.5*i
        EXPECT_NEAR(got, 6.0 + 2.0 * static_cast<double>(i), 1e-9) << i;
      }
    }
  });
  f.run_ok();
}

TEST(SendRecv, ExchangesWithoutDeadlockInBothDirections) {
  MpiFixture f(2, 1);
  f.launch_all([&](MpiCtx& ctx) -> sim::Task<void> {
    const std::size_t len = 200_KiB;  // rendezvous: would deadlock if serial
    const int peer = 1 - ctx.rank();
    const auto s = ctx.vctx().mem().alloc(len);
    const auto d = ctx.vctx().mem().alloc(len);
    ctx.vctx().mem().write(s, pattern_bytes(static_cast<std::uint64_t>(ctx.rank()), len));
    co_await ctx.sendrecv(s, len, peer, 1, d, len, peer, 1);
    EXPECT_TRUE(check_pattern(ctx.vctx().mem().read(d, len),
                              static_cast<std::uint64_t>(peer)));
  });
  f.run_ok();
}

TEST(SendRecv, RingRotation) {
  MpiFixture f(3, 2);
  const int n = 6;
  f.launch_all([&, n](MpiCtx& ctx) -> sim::Task<void> {
    const std::size_t len = 4_KiB;
    const int right = (ctx.rank() + 1) % n;
    const int left = (ctx.rank() - 1 + n) % n;
    const auto s = ctx.vctx().mem().alloc(len);
    const auto d = ctx.vctx().mem().alloc(len);
    ctx.vctx().mem().write(s, pattern_bytes(static_cast<std::uint64_t>(ctx.rank()), len));
    co_await ctx.sendrecv(s, len, right, 0, d, len, left, 0);
    EXPECT_TRUE(
        check_pattern(ctx.vctx().mem().read(d, len), static_cast<std::uint64_t>(left)));
  });
  f.run_ok();
}

}  // namespace
}  // namespace dpu::mpi
