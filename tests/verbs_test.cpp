// Unit tests for the simulated verbs layer: registration, key validation,
// RDMA data integrity, GVMI / cross-GVMI semantics, control messages.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/check.h"
#include "common/units.h"
#include "fabric/fabric.h"
#include "machine/spec.h"
#include "sim/engine.h"
#include "verbs/verbs.h"

namespace dpu::verbs {
namespace {

struct Fixture {
  machine::ClusterSpec spec;
  sim::Engine eng;
  std::unique_ptr<fabric::Fabric> fab;
  std::unique_ptr<Runtime> rt;

  explicit Fixture(int nodes = 2, int ppn = 2, int proxies = 1) {
    spec.nodes = nodes;
    spec.host_procs_per_node = ppn;
    spec.proxies_per_dpu = proxies;
    fab = std::make_unique<fabric::Fabric>(eng, spec);
    rt = std::make_unique<Runtime>(eng, spec, *fab);
  }

  /// Runs a single driver coroutine to completion and asserts success.
  void drive(sim::Task<void> t) {
    eng.spawn(std::move(t), "driver");
    ASSERT_EQ(eng.run(), sim::RunResult::kCompleted);
  }
};

TEST(Verbs, RegMrReturnsDistinctKeysAndCharges) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& ctx = f.rt->ctx(0);
    const auto addr = ctx.mem().alloc(64_KiB);
    const SimTime before = f.eng.now();
    auto mr = co_await ctx.reg_mr(addr, 64_KiB);
    EXPECT_GT(f.eng.now(), before);  // registration costs CPU time
    EXPECT_NE(mr.lkey, mr.rkey);
    EXPECT_EQ(mr.owner, 0);
  }(f));
}

TEST(Verbs, RegMrOfUnallocatedBufferFails) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& ctx = f.rt->ctx(0);
    bool threw = false;
    try {
      (void)co_await ctx.reg_mr(Addr{0xdead000}, 64);
    } catch (const SimError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
}

TEST(Verbs, RdmaWriteMovesBytes) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);
    auto& b = f.rt->ctx(2);  // rank 2 is on node 1 (ppn=2)
    const auto src = a.mem().alloc(4_KiB);
    const auto dst = b.mem().alloc(4_KiB);
    a.mem().write(src, pattern_bytes(42, 4_KiB));
    auto src_mr = co_await a.reg_mr(src, 4_KiB);
    auto dst_mr = co_await b.reg_mr(dst, 4_KiB);
    auto c = co_await a.post_rdma_write(src_mr.lkey, src, 2, dst_mr.rkey, dst, 4_KiB);
    co_await a.wait(c);
    EXPECT_TRUE(check_pattern(b.mem().read(dst, 4_KiB), 42));
  }(f));
}

TEST(Verbs, RdmaWriteAtOffsetWithinRegistration) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);
    auto& b = f.rt->ctx(2);
    const auto src = a.mem().alloc(8_KiB);
    const auto dst = b.mem().alloc(8_KiB);
    a.mem().write(src, pattern_bytes(5, 8_KiB));
    auto src_mr = co_await a.reg_mr(src, 8_KiB);
    auto dst_mr = co_await b.reg_mr(dst, 8_KiB);
    auto c = co_await a.post_rdma_write(src_mr.lkey, src + 1024, 2, dst_mr.rkey, dst + 2048,
                                        1_KiB);
    co_await a.wait(c);
    auto got = b.mem().read(dst + 2048, 1_KiB);
    auto want = a.mem().read(src + 1024, 1_KiB);
    EXPECT_EQ(got, want);
  }(f));
}

TEST(Verbs, RdmaWriteWithForeignRkeyFails) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);
    auto& b = f.rt->ctx(2);
    const auto src = a.mem().alloc(1_KiB);
    const auto dst = b.mem().alloc(1_KiB);
    auto src_mr = co_await a.reg_mr(src, 1_KiB);
    auto dst_mr = co_await b.reg_mr(dst, 1_KiB);
    bool threw = false;
    try {
      // rkey valid at b, but we aim it at proc 1's context.
      (void)co_await a.post_rdma_write(src_mr.lkey, src, 1, dst_mr.rkey, dst, 1_KiB);
    } catch (const SimError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
}

TEST(Verbs, RdmaWriteAfterDeregFails) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);
    auto& b = f.rt->ctx(2);
    const auto src = a.mem().alloc(1_KiB);
    const auto dst = b.mem().alloc(1_KiB);
    auto src_mr = co_await a.reg_mr(src, 1_KiB);
    auto dst_mr = co_await b.reg_mr(dst, 1_KiB);
    co_await b.dereg_mr(dst_mr);
    bool threw = false;
    try {
      (void)co_await a.post_rdma_write(src_mr.lkey, src, 2, dst_mr.rkey, dst, 1_KiB);
    } catch (const SimError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
}

TEST(Verbs, RdmaReadPullsBytes) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);
    auto& b = f.rt->ctx(2);
    const auto remote = b.mem().alloc(2_KiB);
    const auto local = a.mem().alloc(2_KiB);
    b.mem().write(remote, pattern_bytes(77, 2_KiB));
    auto r_mr = co_await b.reg_mr(remote, 2_KiB);
    auto l_mr = co_await a.reg_mr(local, 2_KiB);
    auto c = co_await a.post_rdma_read(l_mr.lkey, local, 2, r_mr.rkey, remote, 2_KiB);
    co_await a.wait(c);
    EXPECT_TRUE(check_pattern(a.mem().read(local, 2_KiB), 77));
  }(f));
}

TEST(Verbs, GvmiIdAllocRestrictedToDpuProcs) {
  Fixture f;
  EXPECT_THROW(f.rt->ctx(0).alloc_gvmi_id(), SimError);  // host proc
  const int proxy = f.spec.proxy_id(0, 0);
  EXPECT_NO_THROW(f.rt->ctx(proxy).alloc_gvmi_id());
}

TEST(Verbs, CrossGvmiFullFlowMovesBytesFromHostMemory) {
  // The §V sequence: DPU allocates GVMI-ID; host registers buffer against
  // it (mkey); DPU cross-registers (mkey2); DPU RDMA-writes on behalf of
  // the host directly from host memory to a remote host buffer.
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    const int proxy = f.spec.proxy_id(0, 0);
    auto& host_src = f.rt->ctx(0);
    auto& dpu = f.rt->ctx(proxy);
    auto& host_dst = f.rt->ctx(2);

    const auto src = host_src.mem().alloc(16_KiB);
    const auto dst = host_dst.mem().alloc(16_KiB);
    host_src.mem().write(src, pattern_bytes(11, 16_KiB));

    const GvmiId gvmi = dpu.alloc_gvmi_id();
    auto ginfo = co_await host_src.reg_mr_gvmi(src, 16_KiB, gvmi);
    auto dst_mr = co_await host_dst.reg_mr(dst, 16_KiB);
    const MKey mkey2 = co_await dpu.cross_register(ginfo);
    auto c =
        co_await dpu.post_rdma_write_on_behalf(mkey2, src, 2, dst_mr.rkey, dst, 16_KiB);
    co_await dpu.wait(c);
    EXPECT_TRUE(check_pattern(host_dst.mem().read(dst, 16_KiB), 11));
  }(f));
}

TEST(Verbs, CrossRegisterRejectsMismatchedParameters) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    const int proxy = f.spec.proxy_id(0, 0);
    auto& host = f.rt->ctx(0);
    auto& dpu = f.rt->ctx(proxy);
    const auto src = host.mem().alloc(4_KiB);
    const GvmiId gvmi = dpu.alloc_gvmi_id();
    auto ginfo = co_await host.reg_mr_gvmi(src, 4_KiB, gvmi);
    auto tampered = ginfo;
    tampered.len = 8_KiB;  // lies about the registered length
    bool threw = false;
    try {
      (void)co_await dpu.cross_register(tampered);
    } catch (const SimError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
}

TEST(Verbs, CrossRegisterRejectsForeignGvmi) {
  Fixture f(/*nodes=*/2, /*ppn=*/2, /*proxies=*/2);
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& host = f.rt->ctx(0);
    auto& dpu_a = f.rt->ctx(f.spec.proxy_id(0, 0));
    auto& dpu_remote = f.rt->ctx(f.spec.proxy_id(1, 0));
    const auto src = host.mem().alloc(4_KiB);
    const GvmiId gvmi = dpu_a.alloc_gvmi_id();
    auto ginfo = co_await host.reg_mr_gvmi(src, 4_KiB, gvmi);
    bool threw = false;
    try {
      // A worker on a DIFFERENT node fronts a different HCA: rejected.
      (void)co_await dpu_remote.cross_register(ginfo);
    } catch (const SimError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
}

TEST(Verbs, CrossRegisterAllowsSameNodeSibling) {
  // Workers on one DPU share the device's protection domain, so a sibling
  // of the GVMI-owning worker may cross-register the buffer — the striping
  // path delegates segments on exactly this basis.
  Fixture f(/*nodes=*/2, /*ppn=*/2, /*proxies=*/2);
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& host = f.rt->ctx(0);
    auto& dpu_a = f.rt->ctx(f.spec.proxy_id(0, 0));
    auto& dpu_b = f.rt->ctx(f.spec.proxy_id(0, 1));
    const auto src = host.mem().alloc(4_KiB);
    const GvmiId gvmi = dpu_a.alloc_gvmi_id();
    auto ginfo = co_await host.reg_mr_gvmi(src, 4_KiB, gvmi);
    const MKey mk = co_await dpu_b.cross_register(ginfo);
    EXPECT_NE(mk, 0u);
  }(f));
}

TEST(Verbs, HostGvmiRegRejectsUnknownId) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& host = f.rt->ctx(0);
    const auto src = host.mem().alloc(1_KiB);
    bool threw = false;
    try {
      (void)co_await host.reg_mr_gvmi(src, 1_KiB, GvmiId{99999});
    } catch (const SimError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
}

TEST(Verbs, OnBehalfWriteRejectsStaleMkey2AfterHostDereg) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    const int proxy = f.spec.proxy_id(0, 0);
    auto& host = f.rt->ctx(0);
    auto& dpu = f.rt->ctx(proxy);
    auto& dst_host = f.rt->ctx(2);
    const auto src = host.mem().alloc(4_KiB);
    const auto dst = dst_host.mem().alloc(4_KiB);
    const GvmiId gvmi = dpu.alloc_gvmi_id();
    auto ginfo = co_await host.reg_mr_gvmi(src, 4_KiB, gvmi);
    auto dst_mr = co_await dst_host.reg_mr(dst, 4_KiB);
    const MKey mkey2 = co_await dpu.cross_register(ginfo);
    // Tamper: range exceeds the cross-registered window.
    bool threw = false;
    try {
      (void)co_await dpu.post_rdma_write_on_behalf(mkey2, src + 1, 2, dst_mr.rkey, dst,
                                                   4_KiB);
    } catch (const SimError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
}

TEST(Verbs, CtrlMessageArrivesInInbox) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);
    auto& b = f.rt->ctx(2);
    co_await a.post_ctrl(2, /*channel=*/7, std::string("hello"), 16);
    auto msg = co_await b.inbox(7).recv();
    EXPECT_EQ(msg.src, 0);
    EXPECT_EQ(msg.channel, 7);
    EXPECT_EQ(std::any_cast<std::string>(msg.body), "hello");
    EXPECT_GT(msg.wire_bytes, 16u);  // envelope included
  }(f));
}

TEST(Verbs, CtrlMessagesPreserveOrderPerChannel) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);
    auto& b = f.rt->ctx(2);
    for (int i = 0; i < 5; ++i) co_await a.post_ctrl(2, 1, i, 8);
    for (int i = 0; i < 5; ++i) {
      auto msg = co_await b.inbox(1).recv();
      EXPECT_EQ(std::any_cast<int>(msg.body), i);
    }
  }(f));
}

TEST(Verbs, FlagWriteSetsRemoteEvent) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);
    auto flag = std::make_shared<sim::Event>(f.eng);
    co_await a.post_flag_write(2, flag, 2);
    co_await flag->wait();
    EXPECT_GT(f.eng.now(), 0u);
  }(f));
}

TEST(Verbs, DpuPostIsSlowerThanHostPost) {
  // Measures the initiation gap that drives the fig. 3 bandwidth shape.
  Fixture f;
  SimDuration host_cost = 0;
  SimDuration dpu_cost = 0;
  f.drive([](Fixture& f, SimDuration& host_cost, SimDuration& dpu_cost) -> sim::Task<void> {
    auto& host = f.rt->ctx(0);
    auto& dpu = f.rt->ctx(f.spec.proxy_id(0, 0));
    auto& peer = f.rt->ctx(2);
    const auto hbuf = host.mem().alloc(1_KiB);
    const auto dbuf = dpu.mem().alloc(1_KiB);
    const auto pbuf = peer.mem().alloc(2_KiB);
    auto hmr = co_await host.reg_mr(hbuf, 1_KiB);
    auto dmr = co_await dpu.reg_mr(dbuf, 1_KiB);
    auto pmr = co_await peer.reg_mr(pbuf, 2_KiB);

    SimTime t0 = f.eng.now();
    (void)co_await host.post_rdma_write(hmr.lkey, hbuf, 2, pmr.rkey, pbuf, 1_KiB);
    host_cost = f.eng.now() - t0;
    t0 = f.eng.now();
    (void)co_await dpu.post_rdma_write(dmr.lkey, dbuf, 2, pmr.rkey, pbuf + 1024, 1_KiB);
    dpu_cost = f.eng.now() - t0;
  }(f, host_cost, dpu_cost));
  EXPECT_GT(dpu_cost, host_cost);
}

TEST(Verbs, WriteWithImmediateDeliversDataAndNotification) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);
    auto& b = f.rt->ctx(2);
    const auto src = a.mem().alloc(2_KiB);
    const auto dst = b.mem().alloc(2_KiB);
    a.mem().write(src, pattern_bytes(3, 2_KiB));
    auto src_mr = co_await a.reg_mr(src, 2_KiB);
    auto dst_mr = co_await b.reg_mr(dst, 2_KiB);
    std::any imm = std::string("imm-payload");
    auto c = co_await a.post_rdma_write_imm(src_mr.lkey, src, 2, dst_mr.rkey, dst, 2_KiB,
                                            /*imm_channel=*/9, std::move(imm));
    // Immediate is consumed from the destination inbox, data already placed.
    auto msg = co_await b.inbox(9).recv();
    EXPECT_EQ(std::any_cast<std::string>(msg.body), "imm-payload");
    EXPECT_TRUE(check_pattern(b.mem().read(dst, 2_KiB), 3));
    co_await a.wait(c);
  }(f));
}

TEST(Verbs, HookedOnBehalfWriteRunsHookAtDelivery) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    const int proxy = f.spec.proxy_id(0, 0);
    auto& host = f.rt->ctx(0);
    auto& dpu = f.rt->ctx(proxy);
    auto& dst_host = f.rt->ctx(2);
    const auto src = host.mem().alloc(4_KiB);
    const auto dst = dst_host.mem().alloc(4_KiB);
    host.mem().write(src, pattern_bytes(8, 4_KiB));
    const auto gvmi = dpu.alloc_gvmi_id();
    auto ginfo = co_await host.reg_mr_gvmi(src, 4_KiB, gvmi);
    auto dst_mr = co_await dst_host.reg_mr(dst, 4_KiB);
    const auto mkey2 = co_await dpu.cross_register(ginfo);
    bool hook_ran = false;
    std::function<void()> hook = [&f, &dst_host, dst, &hook_ran] {
      // Hook fires after the byte copy.
      hook_ran = check_pattern(dst_host.mem().read(dst, 4_KiB), 8);
      (void)f;
    };
    auto c = co_await dpu.post_rdma_write_on_behalf_hooked(mkey2, src, 2, dst_mr.rkey, dst,
                                                           4_KiB, std::move(hook));
    co_await dpu.wait(c);
    EXPECT_TRUE(hook_ran);
  }(f));
}

TEST(Verbs, GvmiDeregInvalidatesCrossRegistration) {
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    const int proxy = f.spec.proxy_id(0, 0);
    auto& host = f.rt->ctx(0);
    auto& dpu = f.rt->ctx(proxy);
    const auto src = host.mem().alloc(4_KiB);
    const auto gvmi = dpu.alloc_gvmi_id();
    auto ginfo = co_await host.reg_mr_gvmi(src, 4_KiB, gvmi);
    co_await host.dereg_mr_gvmi(ginfo);
    bool threw = false;
    try {
      (void)co_await dpu.cross_register(ginfo);  // mkey now stale
    } catch (const SimError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }(f));
}

TEST(Verbs, SameNodeDataUsesPcieNotNicPorts) {
  // A same-node on-behalf write must not serialize behind wire traffic: the
  // loopback path has its own DMA lanes.
  Fixture f;
  f.drive([](Fixture& f) -> sim::Task<void> {
    auto& a = f.rt->ctx(0);      // host, node 0
    auto& b = f.rt->ctx(1);      // host, node 0 (same node)
    auto& c = f.rt->ctx(2);      // host, node 1
    const auto big = a.mem().alloc(8_MiB, false);
    const auto dst_far = c.mem().alloc(8_MiB, false);
    const auto src2 = b.mem().alloc(64_KiB, false);
    const auto dst_near = a.mem().alloc(64_KiB, false);
    auto big_mr = co_await a.reg_mr(big, 8_MiB);
    auto far_mr = co_await c.reg_mr(dst_far, 8_MiB);
    auto src2_mr = co_await b.reg_mr(src2, 64_KiB);
    auto near_mr = co_await a.reg_mr(dst_near, 64_KiB);
    // Saturate the wire with a big inter-node write, then issue a same-node
    // transfer: it must complete long before the big one.
    auto big_c = co_await a.post_rdma_write(big_mr.lkey, big, 2, far_mr.rkey, dst_far, 8_MiB);
    auto near_c =
        co_await b.post_rdma_write(src2_mr.lkey, src2, 0, near_mr.rkey, dst_near, 64_KiB);
    const SimTime t0 = f.eng.now();
    co_await b.wait(near_c);
    const SimDuration near_t = f.eng.now() - t0;
    co_await a.wait(big_c);
    EXPECT_LT(to_us(near_t), 50.0);  // unaffected by the 8 MiB wire transfer
  }(f));
}

}  // namespace
}  // namespace dpu::verbs
