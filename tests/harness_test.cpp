// Tests for the harness: World wiring, launch semantics, failure
// propagation, the OMB overlap formula, RankSeries, and the trace timeline.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.h"
#include "common/units.h"
#include "harness/measure.h"
#include "harness/world.h"
#include "sim/trace.h"

namespace dpu::harness {
namespace {

machine::ClusterSpec small_spec() {
  machine::ClusterSpec s;
  s.nodes = 2;
  s.host_procs_per_node = 2;
  s.proxies_per_dpu = 1;
  return s;
}

TEST(World, WiresAllSubsystems) {
  World w(small_spec());
  EXPECT_EQ(w.spec().total_host_ranks(), 4);
  EXPECT_EQ(w.mpi().world()->size(), 4);
  // Proxies were spawned and parked.
  EXPECT_FALSE(w.engine().live_process_names().empty());
}

TEST(World, RankContextIsComplete) {
  World w(small_spec());
  w.launch(2, [](Rank& r) -> sim::Task<void> {
    EXPECT_EQ(r.rank, 2);
    EXPECT_NE(r.mpi, nullptr);
    EXPECT_NE(r.off, nullptr);
    EXPECT_NE(r.blues, nullptr);
    EXPECT_NE(r.vctx, nullptr);
    EXPECT_EQ(r.mpi->rank(), 2);
    co_return;
  });
  w.run();
}

TEST(World, LaunchRejectsProxyIds) {
  World w(small_spec());
  EXPECT_THROW(w.launch(w.spec().proxy_id(0, 0), [](Rank&) -> sim::Task<void> { co_return; }),
               std::logic_error);
}

TEST(World, RunPropagatesRankExceptions) {
  World w(small_spec());
  w.launch(0, [](Rank&) -> sim::Task<void> {
    throw SimError("application failure");
    co_return;
  });
  EXPECT_THROW(w.run(), SimError);
}

TEST(World, RunReportsDeadlockedRanksByName) {
  World w(small_spec());
  w.launch(0, [](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(64, false);
    co_await r.mpi->recv(buf, 64, 1, 0);  // nobody sends
  });
  try {
    w.run();
    FAIL() << "expected deadlock";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("rank0"), std::string::npos);
  }
}

TEST(World, WithoutOffloadStillRunsMpi) {
  World w(small_spec(), /*with_offload=*/false);
  w.launch_all([](Rank& r) -> sim::Task<void> {
    EXPECT_EQ(r.off, nullptr);
    co_await r.mpi->barrier(*r.world->mpi().world());
  });
  w.run();
}

TEST(World, StatsSummaryReflectsActivity) {
  World w(small_spec());
  w.launch_all([](Rank& r) -> sim::Task<void> {
    const int peer = (r.rank + 2) % 4;
    const auto s = r.mem().alloc(4_KiB, false);
    const auto d = r.mem().alloc(4_KiB, false);
    auto qs = co_await r.off->send_offload(s, 4_KiB, peer, 0);
    auto qr = co_await r.off->recv_offload(d, 4_KiB, peer, 0);
    EXPECT_EQ(co_await r.off->wait(qs), offload::Status::kOk);
    EXPECT_EQ(co_await r.off->wait(qr), offload::Status::kOk);
  });
  w.run();
  const std::string s = w.stats_summary();
  EXPECT_NE(s.find("fabric:"), std::string::npos);
  EXPECT_NE(s.find("misses"), std::string::npos);
  EXPECT_EQ(s.find("fabric: 0 messages"), std::string::npos);  // traffic happened
}

TEST(Measure, OverlapFormulaMatchesOmb) {
  // Perfect overlap: overall == compute -> 100%.
  EXPECT_DOUBLE_EQ(overlap_pct(100.0, 100.0, 50.0), 100.0);
  // No overlap: overall == compute + pure -> 0%.
  EXPECT_DOUBLE_EQ(overlap_pct(150.0, 100.0, 50.0), 0.0);
  // Half overlap.
  EXPECT_DOUBLE_EQ(overlap_pct(125.0, 100.0, 50.0), 50.0);
  // Clamped below zero and above 100.
  EXPECT_DOUBLE_EQ(overlap_pct(200.0, 100.0, 50.0), 0.0);
  EXPECT_DOUBLE_EQ(overlap_pct(90.0, 100.0, 50.0), 100.0);
}

TEST(Measure, OverlapRejectsZeroPureTime) {
  EXPECT_THROW(overlap_pct(1.0, 1.0, 0.0), std::logic_error);
}

TEST(Measure, RankSeriesReduces) {
  RankSeries s;
  s.record(0, 10.0);
  s.record(1, 30.0);
  s.record(2, 20.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
  EXPECT_DOUBLE_EQ(s.mean(), 20.0);
  EXPECT_EQ(s.count(), 3u);
  s.record(1, 5.0);  // overwrite, not append
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.max(), 20.0);
}

TEST(Trace, TimelineRendersActorsAndSpans) {
  sim::Trace tr;
  tr.add("host:0", "compute", "gemm", 0, 50_us);
  tr.add("host:0", "xfer", "send", 50_us, 60_us);
  tr.add("dpu:0", "xfer", "proxy write", 10_us, 55_us);
  std::ostringstream os;
  tr.print_timeline(os, 40);
  const std::string out = os.str();
  EXPECT_NE(out.find("host:0"), std::string::npos);
  EXPECT_NE(out.find("dpu:0"), std::string::npos);
  EXPECT_NE(out.find("c"), std::string::npos);  // compute marks
  EXPECT_NE(out.find("x"), std::string::npos);  // xfer marks
}

TEST(Trace, EmptyTraceRendersPlaceholder) {
  sim::Trace tr;
  std::ostringstream os;
  tr.print_timeline(os);
  EXPECT_NE(os.str().find("empty"), std::string::npos);
}

TEST(Trace, ClearResets) {
  sim::Trace tr;
  tr.add("a", "c", "x", 0, 1);
  EXPECT_EQ(tr.spans().size(), 1u);
  tr.clear();
  EXPECT_TRUE(tr.spans().empty());
}

}  // namespace
}  // namespace dpu::harness
