// Unit tests for simulation synchronization primitives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/units.h"
#include "sim/engine.h"
#include "sim/sync.h"
#include "sim/task.h"

namespace dpu::sim {
namespace {

TEST(Event, WaitAfterSetDoesNotSuspend) {
  Engine eng;
  Event ev(eng);
  ev.set();
  bool reached = false;
  auto body = [&]() -> Task<void> {
    co_await ev.wait();
    reached = true;
  };
  eng.spawn(body());
  eng.run();
  EXPECT_TRUE(reached);
}

TEST(Event, WakesAllWaitersAtSetTime) {
  Engine eng;
  Event ev(eng);
  std::vector<SimTime> wake;
  auto waiter = [&]() -> Task<void> {
    co_await ev.wait();
    wake.push_back(eng.now());
  };
  for (int i = 0; i < 3; ++i) eng.spawn(waiter());
  auto setter = [&]() -> Task<void> {
    co_await eng.sleep(25_ns);
    ev.set();
  };
  eng.spawn(setter());
  EXPECT_EQ(eng.run(), RunResult::kCompleted);
  ASSERT_EQ(wake.size(), 3u);
  for (auto t : wake) EXPECT_EQ(t, 25_ns);
}

TEST(Event, DoubleSetIsIdempotent) {
  Engine eng;
  Event ev(eng);
  ev.set();
  EXPECT_NO_THROW(ev.set());
  EXPECT_TRUE(ev.is_set());
}

TEST(Notifier, OnlyWakesRegisteredWaiters) {
  Engine eng;
  Notifier n(eng);
  int wakes = 0;
  auto waiter = [&]() -> Task<void> {
    co_await n.wait();
    ++wakes;
    co_await n.wait();  // must block again until a second notify
    ++wakes;
  };
  eng.spawn(waiter());
  auto notifier = [&]() -> Task<void> {
    co_await eng.sleep(10_ns);
    n.notify_all();
  };
  eng.spawn(notifier());
  EXPECT_EQ(eng.run(), RunResult::kDeadlock);  // waiter stuck on second wait
  EXPECT_EQ(wakes, 1);
}

TEST(Notifier, NotifyWithNoWaitersIsNoop) {
  Engine eng;
  Notifier n(eng);
  EXPECT_NO_THROW(n.notify_all());
  EXPECT_EQ(n.waiter_count(), 0u);
}

TEST(Channel, DeliversInFifoOrder) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got;
  auto consumer = [&]() -> Task<void> {
    for (int i = 0; i < 3; ++i) got.push_back(co_await ch.recv());
  };
  eng.spawn(consumer());
  auto producer = [&]() -> Task<void> {
    ch.send(1);
    ch.send(2);
    co_await eng.sleep(5_ns);
    ch.send(3);
  };
  eng.spawn(producer());
  EXPECT_EQ(eng.run(), RunResult::kCompleted);
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Channel, RecvBlocksUntilSend) {
  Engine eng;
  Channel<std::string> ch(eng);
  SimTime got_at = 0;
  auto consumer = [&]() -> Task<void> {
    auto s = co_await ch.recv();
    EXPECT_EQ(s, "hello");
    got_at = eng.now();
  };
  eng.spawn(consumer());
  auto producer = [&]() -> Task<void> {
    co_await eng.sleep(100_ns);
    ch.send("hello");
  };
  eng.spawn(producer());
  eng.run();
  EXPECT_EQ(got_at, 100_ns);
}

TEST(Channel, TryRecvNeverSuspends) {
  Engine eng;
  Channel<int> ch(eng);
  EXPECT_FALSE(ch.try_recv().has_value());
  ch.send(9);
  auto v = ch.try_recv();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 9);
  EXPECT_TRUE(ch.empty());
}

TEST(Channel, CompetingReceiversServedInArrivalOrder) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<std::pair<int, int>> got;  // (receiver, value)
  auto consumer = [&](int id) -> Task<void> {
    int v = co_await ch.recv();
    got.emplace_back(id, v);
  };
  eng.spawn(consumer(0));
  eng.spawn(consumer(1));
  auto producer = [&]() -> Task<void> {
    co_await eng.sleep(1_ns);
    ch.send(10);
    co_await eng.sleep(1_ns);
    ch.send(20);
  };
  eng.spawn(producer());
  EXPECT_EQ(eng.run(), RunResult::kCompleted);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], std::make_pair(0, 10));
  EXPECT_EQ(got[1], std::make_pair(1, 20));
}

TEST(Semaphore, LimitsConcurrency) {
  Engine eng;
  Semaphore sem(eng, 2);
  int inside = 0;
  int peak = 0;
  auto worker = [&]() -> Task<void> {
    co_await sem.acquire();
    ++inside;
    peak = std::max(peak, inside);
    co_await eng.sleep(10_ns);
    --inside;
    sem.release();
  };
  for (int i = 0; i < 6; ++i) eng.spawn(worker());
  EXPECT_EQ(eng.run(), RunResult::kCompleted);
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(eng.now(), 30_ns);  // 6 workers, 2 at a time, 10 ns each
}

TEST(Semaphore, ReleaseWithoutWaitersAccumulates) {
  Engine eng;
  Semaphore sem(eng, 0);
  sem.release();
  sem.release();
  EXPECT_EQ(sem.available(), 2u);
  bool done = false;
  auto w = [&]() -> Task<void> {
    co_await sem.acquire();
    co_await sem.acquire();
    done = true;
  };
  eng.spawn(w());
  eng.run();
  EXPECT_TRUE(done);
}

}  // namespace
}  // namespace dpu::sim
