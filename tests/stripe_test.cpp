// Segmented data path (chunked pipelining + multi-proxy striping) suite.
//
// Messages above CostModel::stripe_threshold split into chunk_bytes
// segments striped round-robin over the source node's workers, each chunk
// an independent RDMA with completion aggregated into one host flag write.
// The suite pins down the contract: byte-exact reassembly across chunk
// boundaries (tail included), the per-worker in-flight cap, independent
// per-chunk retransmission under wire faults, failover that replays only
// the dead worker's chunks, group-template striping with sibling
// delegation, and inertness of the armed-but-uncrossed knob.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>

#include "common/bytes.h"
#include "common/check.h"
#include "common/units.h"
#include "harness/world.h"
#include "offload/proxy.h"
#include "offload/stripe.h"

namespace dpu::offload {
namespace {

using harness::Rank;
using harness::World;

machine::ClusterSpec striped_spec(int proxies, std::size_t threshold, std::size_t chunk,
                                  int nodes = 2, int ppn = 1) {
  machine::ClusterSpec s;
  s.nodes = nodes;
  s.host_procs_per_node = ppn;
  s.proxies_per_dpu = proxies;
  s.cost.stripe_threshold = threshold;
  s.cost.chunk_bytes = chunk;
  return s;
}

std::uint64_t sum_chunks_moved(World& w) {
  std::uint64_t total = 0;
  for (int n = 0; n < w.spec().nodes; ++n) {
    for (int l = 0; l < w.spec().proxies_per_dpu; ++l) {
      total += w.offload().proxy(w.spec().proxy_id(n, l)).chunks_moved();
    }
  }
  return total;
}

std::uint64_t sum_retries(World& w) {
  std::uint64_t total = 0;
  for (int n = 0; n < w.spec().nodes; ++n) {
    for (int l = 0; l < w.spec().proxies_per_dpu; ++l) {
      total += w.offload().proxy(w.spec().proxy_id(n, l)).retries();
    }
  }
  for (int r = 0; r < w.spec().total_host_ranks(); ++r) {
    total += w.metrics().counter_value("offload.host" + std::to_string(r) + ".retries");
  }
  return total;
}

// ---------------------------------------------------------------------------
// Plan arithmetic
// ---------------------------------------------------------------------------

TEST(Stripe, PlanCoversTheMessageExactlyOnce) {
  const auto s = striped_spec(/*proxies=*/4, /*threshold=*/64_KiB, /*chunk=*/48_KiB);
  const std::size_t len = 200_KiB;  // 4 full chunks + an 8 KiB tail
  const auto plan = plan_chunks(s, /*src=*/0, len);
  ASSERT_EQ(plan.size(), 5u);
  std::size_t covered = 0;
  for (const auto& ck : plan) {
    EXPECT_EQ(ck.offset, covered);
    covered += chunk_len(len, s.cost.chunk_bytes, ck.index, ck.count);
    EXPECT_TRUE(s.is_proxy(ck.owner_proxy));
    EXPECT_EQ(s.node_of(ck.owner_proxy), 0);
  }
  EXPECT_EQ(covered, len);
  // Round-robin from the home worker: successive chunks land on distinct
  // siblings until the worker count wraps.
  EXPECT_NE(plan[0].owner_proxy, plan[1].owner_proxy);
  EXPECT_EQ(plan[0].owner_proxy, plan[4].owner_proxy);  // 5 chunks, 4 workers

  // Below the threshold (or with the feature off) the plan is empty.
  EXPECT_TRUE(plan_chunks(s, 0, 64_KiB).empty());
  machine::ClusterSpec off = s;
  off.cost.stripe_threshold = 0;
  EXPECT_TRUE(plan_chunks(off, 0, len).empty());
}

TEST(Stripe, ChunkTagsAreCollisionFreeAcrossIndices) {
  for (int tag : {0, 1, 7, 1000, (1 << 14) - 1}) {
    EXPECT_NE(chunk_tag(tag, 0), tag);
    for (std::uint32_t i = 0; i < 63; ++i) {
      EXPECT_NE(chunk_tag(tag, i), chunk_tag(tag, i + 1));
    }
  }
}

// ---------------------------------------------------------------------------
// Reassembly: byte pattern survives chunk boundaries, tail included
// ---------------------------------------------------------------------------

TEST(Stripe, ReassemblesBytePatternAcrossChunkBoundaries) {
  auto s = striped_spec(/*proxies=*/4, /*threshold=*/64_KiB, /*chunk=*/48_KiB);
  World w(s);
  const std::size_t len = 200_KiB;  // 5 chunks, short tail
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    r.mem().write(buf, pattern_bytes(5, len));
    auto req = co_await r.off->send_offload(buf, len, 1, 3);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.launch(1, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    auto req = co_await r.off->recv_offload(buf, len, 0, 3);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(buf, len), 5));
  });
  w.run();
  EXPECT_EQ(sum_chunks_moved(w), 5u);
  EXPECT_EQ(w.metrics().counter_value("offload.host0.bytes_striped"), len);
  EXPECT_EQ(w.metrics().counter_value("offload.host1.bytes_striped"), 0u);
  // The 5 FINs aggregate into exactly one pair of host flag writes.
  EXPECT_EQ(w.metrics().counter_value("stripe.aggregations"), 1u);
}

TEST(Stripe, BelowThresholdTakesTheMonolithicPath) {
  auto s = striped_spec(/*proxies=*/4, /*threshold=*/1_MiB, /*chunk=*/64_KiB);
  World w(s);
  const std::size_t len = 128_KiB;
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    r.mem().write(buf, pattern_bytes(6, len));
    auto req = co_await r.off->send_offload(buf, len, 1, 0);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.launch(1, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    auto req = co_await r.off->recv_offload(buf, len, 0, 0);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(buf, len), 6));
  });
  w.run();
  EXPECT_EQ(sum_chunks_moved(w), 0u);
  EXPECT_EQ(w.metrics().counter_value("offload.host0.bytes_striped"), 0u);
  EXPECT_EQ(w.metrics().counter_value("stripe.aggregations"), 0u);
}

// ---------------------------------------------------------------------------
// In-flight cap: the issue loop never exceeds max_chunks_in_flight
// ---------------------------------------------------------------------------

TEST(Stripe, InFlightCapBoundsPipelinedChunks) {
  // One worker, 16 chunks, cap 2: the pipeline must trickle chunks through
  // without ever holding more than 2 posted-and-unfinished at once.
  auto s = striped_spec(/*proxies=*/1, /*threshold=*/16_KiB, /*chunk=*/16_KiB);
  s.cost.max_chunks_in_flight = 2;
  World w(s);
  const std::size_t len = 256_KiB;
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    r.mem().write(buf, pattern_bytes(9, len));
    auto req = co_await r.off->send_offload(buf, len, 1, 1);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.launch(1, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    auto req = co_await r.off->recv_offload(buf, len, 0, 1);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(buf, len), 9));
  });
  w.run();
  auto& mover = w.offload().proxy(w.spec().proxy_id(0, 0));
  EXPECT_EQ(mover.chunks_moved(), 16u);
  EXPECT_GE(mover.chunks_inflight_hwm(), 1);
  EXPECT_LE(mover.chunks_inflight_hwm(), 2);
  // The global gauge drains back to zero once the transfer completes.
  EXPECT_NE(w.metrics_json().find("\"stripe.chunks_in_flight\": 0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Wire faults: dropped chunk control messages retransmit independently
// ---------------------------------------------------------------------------

TEST(Stripe, DroppedChunkMessagesRetransmitAndStillReassemble) {
  auto s = striped_spec(/*proxies=*/2, /*threshold=*/32_KiB, /*chunk=*/32_KiB);
  s.fault.enabled = true;
  s.fault.seed = 7;
  s.fault.drop_prob = 0.15;
  s.fault.channels = {kProxyChannel};
  World w(s);
  const std::size_t len = 256_KiB;  // 8 chunks across 2 workers
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    r.mem().write(buf, pattern_bytes(11, len));
    auto req = co_await r.off->send_offload(buf, len, 1, 2);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.launch(1, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    auto req = co_await r.off->recv_offload(buf, len, 0, 2);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(buf, len), 11));
  });
  w.run();
  EXPECT_EQ(sum_chunks_moved(w), 8u);
  EXPECT_GT(w.metrics().counter_value("fault.injected"), 0u);
  EXPECT_GT(sum_retries(w), 0u);
}

// ---------------------------------------------------------------------------
// Failover: a worker dying mid-stripe degrades only its own chunks
// ---------------------------------------------------------------------------

TEST(Stripe, ProxyCrashMidStripeReplaysOnlyTheDeadWorkersChunks) {
  // 16 chunks alternate between workers 2 (home) and 3, 8 each, with the
  // default in-flight cap of 4 and a slow per-worker QP rate. Worker 3 dies
  // at t=30us having posted only its first cap-load: RDMAs already in the
  // NIC still deliver (the crash kills the process, not the wire), but the
  // 4 queued chunks never post. Worker 2's 8 chunks complete on the offload
  // path; both endpoints then replay exactly the 8 chunks owned by worker 3
  // on the host path — never the live worker's.
  auto s = striped_spec(/*proxies=*/2, /*threshold=*/32_KiB, /*chunk=*/32_KiB);
  s.cost.dpu_qp_GBps = 1.0;
  s.fault.proxy_failures.push_back({/*proxy=*/3, /*at_us=*/30.0, /*hang=*/false, -1.0});
  World w(s);
  const std::size_t len = 512_KiB;
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    r.mem().write(buf, pattern_bytes(13, len));
    auto req = co_await r.off->send_offload(buf, len, 1, 4);
    EXPECT_EQ(co_await r.off->wait(req), Status::kDegraded);
  });
  w.launch(1, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    auto req = co_await r.off->recv_offload(buf, len, 0, 4);
    EXPECT_EQ(co_await r.off->wait(req), Status::kDegraded);
    EXPECT_TRUE(check_pattern(r.mem().read(buf, len), 13));
  });
  w.run();
  EXPECT_EQ(w.metrics().counter_value("fault.proxy_crashes"), 1u);
  // 8 dead-owned chunks replayed per endpoint; the live worker's 8 are not.
  EXPECT_EQ(w.metrics().counter_value("offload.failover.stripe_chunks_degraded"), 16u);
  EXPECT_EQ(w.offload().proxy(w.spec().proxy_id(0, 0)).chunks_moved(), 8u);
  EXPECT_EQ(w.metrics().counter_value("offload.failover.completed_degraded"), 2u);
}

// ---------------------------------------------------------------------------
// Group templates: recorded entries stripe and delegate to siblings
// ---------------------------------------------------------------------------

TEST(Stripe, GroupExchangeStripesWithSiblingDelegation) {
  // A recorded pairwise exchange of 128 KiB blocks splits into 4 chunks per
  // direction at record time; chunks 1 and 3 of each send are delegated to
  // the home worker's sibling. Replaying the cached template re-moves the
  // same chunks, so two calls double the counter.
  auto s = striped_spec(/*proxies=*/2, /*threshold=*/32_KiB, /*chunk=*/32_KiB);
  World w(s);
  const std::size_t len = 128_KiB;
  w.launch_all([&](Rank& r) -> sim::Task<void> {
    const int me = r.rank;
    const int peer = 1 - me;
    const auto sbuf = r.mem().alloc(len);
    const auto rbuf = r.mem().alloc(len);
    auto req = r.off->group_start();
    r.off->group_send(req, sbuf, len, peer, 0);
    r.off->group_recv(req, rbuf, len, peer, 0);
    r.off->group_end(req);
    for (int it = 0; it < 2; ++it) {
      r.mem().write(sbuf, pattern_bytes(static_cast<std::uint64_t>(20 + me + 10 * it), len));
      co_await r.off->group_call(req);
      EXPECT_EQ(co_await r.off->group_wait(req), Status::kOk);
      EXPECT_TRUE(check_pattern(r.mem().read(rbuf, len),
                                static_cast<std::uint64_t>(20 + peer + 10 * it)))
          << "rank " << me << " iter " << it;
    }
  });
  w.run();
  // 4 chunks x 2 directions x 2 calls.
  EXPECT_EQ(sum_chunks_moved(w), 16u);
  // Both home workers delegated to their sibling: every worker moved bytes.
  for (int n = 0; n < 2; ++n) {
    for (int l = 0; l < 2; ++l) {
      EXPECT_GT(w.offload().proxy(w.spec().proxy_id(n, l)).chunks_moved(), 0u)
          << "node " << n << " worker " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Inertness: arming the knob without crossing the threshold changes nothing
// ---------------------------------------------------------------------------

struct Fingerprint {
  SimTime final_time = 0;
  std::uint64_t events = 0;
  std::uint64_t wire_msgs = 0;
  bool operator==(const Fingerprint&) const = default;
};

Fingerprint mixed_run(std::size_t threshold) {
  machine::ClusterSpec s;
  s.nodes = 2;
  s.host_procs_per_node = 1;
  s.proxies_per_dpu = 2;
  s.cost.stripe_threshold = threshold;
  World w(s);
  const std::size_t len = 64_KiB;
  w.launch_all([&](Rank& r) -> sim::Task<void> {
    const int me = r.rank;
    const int peer = 1 - me;
    const auto a = r.mem().alloc(len);
    const auto b = r.mem().alloc(len);
    // Basic pair one way...
    if (me == 0) {
      r.mem().write(a, pattern_bytes(31, len));
      auto req = co_await r.off->send_offload(a, len, peer, 5);
      EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    } else {
      auto req = co_await r.off->recv_offload(a, len, peer, 5);
      EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    }
    // ...then a recorded exchange both ways.
    auto g = r.off->group_start();
    r.off->group_send(g, a, len, peer, 1);
    r.off->group_recv(g, b, len, peer, 1);
    r.off->group_end(g);
    co_await r.off->group_call(g);
    EXPECT_EQ(co_await r.off->group_wait(g), Status::kOk);
  });
  w.run();
  Fingerprint fp;
  fp.final_time = w.now();
  fp.events = w.engine().events_executed();
  for (int node = 0; node < s.nodes; ++node) {
    fp.wire_msgs += w.fab().stats(node).messages_tx;
  }
  return fp;
}

TEST(Stripe, ArmedButUncrossedThresholdIsTraceIdentical) {
  // 64 KiB ops under a 1 GiB threshold: the segmented path is armed but no
  // message crosses it. Event count, wire traffic and final virtual time
  // must match the knob-off run exactly. (The knob-off default itself is
  // pinned byte-identical to the seed by the bench-suite output diff.)
  const Fingerprint off = mixed_run(/*threshold=*/0);
  const Fingerprint armed = mixed_run(/*threshold=*/std::size_t(1) << 30);
  EXPECT_GT(off.events, 0u);
  EXPECT_TRUE(off == armed)
      << "off: t=" << off.final_time << " ev=" << off.events << " wire=" << off.wire_msgs
      << " armed: t=" << armed.final_time << " ev=" << armed.events
      << " wire=" << armed.wire_msgs;
}

}  // namespace
}  // namespace dpu::offload
