// Tests for the runtime-core refactor: the WaiterList small-buffer FIFO,
// the MetricsRegistry (owned and linked counters, gauges, JSON export),
// ProcHandle edge cases, deadlock diagnostics, and a determinism regression
// pinning the engine's (time, insertion-order) tie-breaking through a full
// group-offload scenario.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/units.h"
#include "harness/world.h"
#include "sim/sync.h"

namespace dpu {
namespace {

using harness::Rank;
using harness::World;

// ---- WaiterList --------------------------------------------------------------

/// Distinct non-null handle values for bookkeeping tests; never resumed.
std::coroutine_handle<> fake_handle(std::size_t i) {
  static int anchors[64];
  return std::coroutine_handle<>::from_address(&anchors[i]);
}

TEST(WaiterList, StartsEmpty) {
  sim::WaiterList wl;
  EXPECT_TRUE(wl.empty());
  EXPECT_EQ(wl.size(), 0u);
}

TEST(WaiterList, FifoWithinInlineCapacity) {
  sim::WaiterList wl;
  wl.push_back(fake_handle(0));
  wl.push_back(fake_handle(1));
  EXPECT_EQ(wl.size(), 2u);
  EXPECT_EQ(wl.pop_front(), fake_handle(0));
  EXPECT_EQ(wl.pop_front(), fake_handle(1));
  EXPECT_TRUE(wl.empty());
}

TEST(WaiterList, SpillsToHeapPreservingOrder) {
  sim::WaiterList wl;
  for (std::size_t i = 0; i < 40; ++i) wl.push_back(fake_handle(i));
  EXPECT_EQ(wl.size(), 40u);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(wl.pop_front(), fake_handle(i));
  EXPECT_TRUE(wl.empty());
}

TEST(WaiterList, RingWrapsUnderInterleavedPushPop) {
  sim::WaiterList wl;
  std::size_t next_push = 0;
  std::size_t next_pop = 0;
  // Keep 3 in flight (just past the inline buffer) across many cycles so
  // head wraps the ring repeatedly.
  for (; next_push < 3; ++next_push) wl.push_back(fake_handle(next_push % 64));
  for (int cycle = 0; cycle < 200; ++cycle) {
    EXPECT_EQ(wl.pop_front(), fake_handle(next_pop++ % 64));
    wl.push_back(fake_handle(next_push++ % 64));
  }
  EXPECT_EQ(wl.size(), 3u);
  while (!wl.empty()) EXPECT_EQ(wl.pop_front(), fake_handle(next_pop++ % 64));
}

TEST(WaiterList, ClearForgetsWaiters) {
  sim::WaiterList wl;
  for (std::size_t i = 0; i < 5; ++i) wl.push_back(fake_handle(i));
  wl.clear();
  EXPECT_TRUE(wl.empty());
  wl.push_back(fake_handle(7));
  EXPECT_EQ(wl.pop_front(), fake_handle(7));
}

TEST(WaiterList, PopOnEmptyThrows) {
  sim::WaiterList wl;
  EXPECT_THROW(wl.pop_front(), std::logic_error);
}

// ---- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, OwnedCounterIsStableAndNamed) {
  metrics::MetricsRegistry reg;
  auto& c = reg.counter("a.count");
  c.inc();
  c += 4;
  ++c;
  EXPECT_EQ(reg.counter_value("a.count"), 6u);
  EXPECT_TRUE(reg.has_counter("a.count"));
  EXPECT_FALSE(reg.has_counter("b.count"));
  EXPECT_EQ(reg.counter_value("b.count"), 0u);
  // Same name -> same counter object.
  EXPECT_EQ(&reg.counter("a.count"), &c);
}

TEST(MetricsRegistry, LinkedCounterIsReadAtExport) {
  metrics::MetricsRegistry reg;
  metrics::Counter mine;
  reg.link("ext.count", &mine);
  mine.set(41);
  mine.inc();
  EXPECT_EQ(reg.counter_value("ext.count"), 42u);
  // Re-linking the same slot is a no-op; a different slot is an error.
  reg.link("ext.count", &mine);
  metrics::Counter other;
  EXPECT_THROW(reg.link("ext.count", &other), std::logic_error);
  EXPECT_THROW(reg.counter("ext.count"), std::logic_error);
}

TEST(MetricsRegistry, JsonExportIsSortedAndEscaped) {
  metrics::MetricsRegistry reg;
  reg.counter("b.two").set(2);
  metrics::Counter linked;
  linked.set(1);
  reg.link("a.one", &linked);
  reg.set_gauge("g\"x", 1.5);
  const std::string js = reg.to_json();
  const auto a = js.find("a.one");
  const auto b = js.find("b.two");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);  // merged across owned/linked in name order
  EXPECT_NE(js.find("\"g\\\"x\": 1.5"), std::string::npos);
  EXPECT_NE(js.find("\"a.one\": 1"), std::string::npos);
}

TEST(MetricsRegistry, CounterConvertsImplicitly) {
  metrics::Counter c;
  c.set(7);
  std::uint64_t sum = 0;
  sum += c;  // the adapter pattern the migrated getters rely on
  EXPECT_EQ(sum, 7u);
  EXPECT_EQ(c, 7u);
}

// ---- ProcHandle / deadlock diagnostics ---------------------------------------

TEST(ProcHandle, DefaultConstructedHandleIsSafe) {
  sim::ProcHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(h.done());
  EXPECT_EQ(h.name(), "");       // must not dereference a null state
  EXPECT_NO_THROW(h.rethrow());
}

TEST(DeadlockDiagnostics, MessageNamesLiveProcesses) {
  World w(machine::ClusterSpec{}, /*with_offload=*/false);
  w.launch(0, [](Rank& r) -> sim::Task<void> {
    sim::Event never(r.world->engine());
    co_await never.wait();
  });
  try {
    w.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("live processes"), std::string::npos) << msg;
  }
}

// ---- Knob-gated exports ------------------------------------------------------

/// One 256 KiB offloaded pair; striping knobs as given by `s`.
std::unique_ptr<World> run_pair(const machine::ClusterSpec& s) {
  auto w = std::make_unique<World>(s);
  const std::size_t len = 256_KiB;
  w->launch(0, [len](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    r.mem().write(buf, pattern_bytes(71, len));
    auto req = co_await r.off->send_offload(buf, len, 1, 0);
    EXPECT_EQ(co_await r.off->wait(req), offload::Status::kOk);
  });
  w->launch(1, [len](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    auto req = co_await r.off->recv_offload(buf, len, 0, 0);
    EXPECT_EQ(co_await r.off->wait(req), offload::Status::kOk);
  });
  w->run();
  return w;
}

TEST(Metrics, StripeCountersExportOnlyWhenTheKnobIsOn) {
  machine::ClusterSpec s;
  s.nodes = 2;
  s.host_procs_per_node = 1;
  s.proxies_per_dpu = 2;

  // Knob off (paper default): none of the stripe names exist, so the JSON
  // stays byte-identical to the pre-feature registry.
  auto off_world = run_pair(s);
  World& off = *off_world;
  const std::string off_js = off.metrics_json();
  EXPECT_EQ(off_js.find("chunks_moved"), std::string::npos);
  EXPECT_EQ(off_js.find("bytes_striped"), std::string::npos);
  EXPECT_EQ(off_js.find("stripe."), std::string::npos);
  EXPECT_FALSE(off.metrics().has_counter("offload.host0.bytes_striped"));

  // Knob on: every stripe series is present and accounted.
  s.cost.stripe_threshold = 32_KiB;
  s.cost.chunk_bytes = 64_KiB;
  auto on_world = run_pair(s);
  World& on = *on_world;
  const std::string on_js = on.metrics_json();
  EXPECT_NE(on_js.find("\"offload.proxy2.chunks_moved\""), std::string::npos);
  EXPECT_NE(on_js.find("\"offload.host0.bytes_striped\""), std::string::npos);
  EXPECT_NE(on_js.find("\"stripe.aggregations\""), std::string::npos);
  EXPECT_NE(on_js.find("\"stripe.chunks_in_flight\""), std::string::npos);
  EXPECT_EQ(on.metrics().counter_value("offload.host0.bytes_striped"), 256_KiB);
  EXPECT_EQ(on.metrics().counter_value("offload.proxy2.chunks_moved") +
                on.metrics().counter_value("offload.proxy3.chunks_moved"),
            4u);
  EXPECT_EQ(on.metrics().counter_value("stripe.aggregations"), 1u);
}

TEST(Metrics, BoundedRegCachesEvictAndExportEvictionCounters) {
  machine::ClusterSpec s;
  s.nodes = 2;
  s.host_procs_per_node = 1;
  s.proxies_per_dpu = 1;

  // Unbounded (default): no eviction series at all.
  auto clean_world = run_pair(s);
  EXPECT_EQ(clean_world->metrics_json().find("evictions"), std::string::npos);

  // Capacity 1: alternating between two buffers thrashes every layer's
  // cache — host GVMI, proxy GVMI, and (via a rendezvous pt2pt) the mpi
  // registration cache — and each layer exports its eviction count.
  s.cost.reg_cache_capacity = 1;
  World w(s);
  const std::size_t len = 64_KiB;  // > eager_threshold: rendezvous registers
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto a = r.mem().alloc(len);
    const auto b = r.mem().alloc(len);
    for (int i = 0; i < 3; ++i) {
      auto req = co_await r.off->send_offload(i % 2 ? b : a, len, 1, i);
      EXPECT_EQ(co_await r.off->wait(req), offload::Status::kOk);
    }
    const auto c = r.mem().alloc(len);
    const auto d = r.mem().alloc(len);
    for (int i = 0; i < 3; ++i) {
      auto h = co_await r.mpi->isend(i % 2 ? d : c, len, 1, 9);
      co_await r.mpi->wait(h);
    }
  });
  w.launch(1, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    for (int i = 0; i < 3; ++i) {
      auto req = co_await r.off->recv_offload(buf, len, 0, i);
      EXPECT_EQ(co_await r.off->wait(req), offload::Status::kOk);
    }
    const auto e = r.mem().alloc(len);
    const auto f = r.mem().alloc(len);
    for (int i = 0; i < 3; ++i) {
      auto h = co_await r.mpi->irecv(i % 2 ? f : e, len, 0, 9);
      co_await r.mpi->wait(h);
    }
  });
  w.run();
  EXPECT_GE(w.metrics().counter_value("offload.host0.gvmi_cache.evictions"), 2u);
  EXPECT_GE(w.metrics().counter_value("offload.proxy2.gvmi_cache.evictions"), 2u);
  EXPECT_GE(w.metrics().counter_value("mpi.rank1.reg_cache.evictions"), 2u);
}

// ---- Determinism regression --------------------------------------------------

struct RunFingerprint {
  SimTime final_time = 0;
  std::uint64_t events = 0;
  std::uint64_t wire_msgs = 0;
};

/// A representative group-offload scenario: a scatter-destination exchange
/// run twice per rank (cold + cached) over 2 nodes x 2 ranks.
RunFingerprint group_offload_fingerprint() {
  machine::ClusterSpec spec;
  spec.nodes = 2;
  spec.host_procs_per_node = 2;
  spec.proxies_per_dpu = 1;
  World w(spec);
  w.launch_all([](Rank& r) -> sim::Task<void> {
    const int n = r.world->spec().total_host_ranks();
    const int me = r.rank;
    const std::size_t bpr = 4_KiB;
    const auto nn = static_cast<std::size_t>(n);
    const auto sbuf = r.mem().alloc(bpr * nn, false);
    const auto rbuf = r.mem().alloc(bpr * nn, false);
    auto req = r.off->group_start();
    for (int i = 1; i < n; ++i) {
      const int dst = (me + i) % n;
      const int src = (me - i + n) % n;
      r.off->group_send(req, sbuf + static_cast<machine::Addr>(dst) * bpr, bpr, dst, 0);
      r.off->group_recv(req, rbuf + static_cast<machine::Addr>(src) * bpr, bpr, src, 0);
    }
    r.off->group_end(req);
    for (int it = 0; it < 2; ++it) {
      co_await r.off->group_call(req);
      EXPECT_EQ(co_await r.off->group_wait(req), offload::Status::kOk);
    }
  });
  w.run();
  RunFingerprint fp;
  fp.final_time = w.now();
  fp.events = w.engine().events_executed();
  for (int node = 0; node < spec.nodes; ++node) {
    fp.wire_msgs += w.fab().stats(node).messages_tx;
  }
  return fp;
}

TEST(Determinism, GroupOffloadScenarioIsBitIdenticalAcrossRuns) {
  const RunFingerprint a = group_offload_fingerprint();
  const RunFingerprint b = group_offload_fingerprint();
  EXPECT_GT(a.events, 0u);
  EXPECT_GT(a.final_time, 0u);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.wire_msgs, b.wire_msgs);
}

}  // namespace
}  // namespace dpu
