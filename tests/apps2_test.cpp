// Second wave of application tests: HPL look-ahead semantics, stencil
// configuration validation, P3DFFT grid handling.
#include <gtest/gtest.h>

#include "apps/hpl.h"
#include "apps/p3dfft.h"
#include "apps/stencil3d.h"
#include "common/check.h"
#include "common/units.h"
#include "harness/world.h"

namespace dpu::apps {
namespace {

using harness::World;

machine::ClusterSpec spec_of(int nodes, int ppn) {
  machine::ClusterSpec s;
  s.nodes = nodes;
  s.host_procs_per_node = ppn;
  s.proxies_per_dpu = 2;
  return s;
}

double run_hpl_cfg(const HplConfig& cfg) {
  World w(spec_of(4, 2));
  HplStats stats;
  w.launch_all(hpl_program(cfg, &stats));
  w.run();
  return stats.total_us;
}

TEST(HplModel, MoreLookaheadNeverHurts1Ring) {
  HplConfig lo;
  lo.n = 4096;
  lo.nb = 512;
  lo.bcast = HplBcast::k1Ring;
  lo.lookahead_frac = 0.1;
  HplConfig hi = lo;
  hi.lookahead_frac = 0.9;
  EXPECT_GE(run_hpl_cfg(lo), run_hpl_cfg(hi) * 0.999);
}

TEST(HplModel, ProposedLessLookaheadSensitiveThan1Ring) {
  // The proxy-driven broadcast needs no polling windows; only the wire time
  // of the ring must fit in the overlap window. The CPU-gated 1ring also
  // pays per-hop polling delays, so shrinking the look-ahead window hurts
  // it at least as much.
  auto delta = [&](HplBcast b) {
    HplConfig lo;
    lo.n = 4096;
    lo.nb = 512;
    lo.bcast = b;
    lo.lookahead_frac = 0.1;
    HplConfig hi = lo;
    hi.lookahead_frac = 0.9;
    return run_hpl_cfg(lo) - run_hpl_cfg(hi);
  };
  const double d_prop = delta(HplBcast::kProposed);
  const double d_ring = delta(HplBcast::k1Ring);
  // Both benefit from a larger overlap window (never negative), and the two
  // sensitivities are of the same order (the ring wire time dominates both
  // at this scale).
  EXPECT_GE(d_prop, 0.0);
  EXPECT_GE(d_ring, 0.0);
  EXPECT_LT(d_prop, d_ring * 2.0);
  EXPECT_LT(d_ring, d_prop * 2.0);
}

TEST(HplModel, ExplicitGridValidated) {
  World w(spec_of(4, 2));
  HplConfig cfg;
  cfg.n = 2048;
  cfg.nb = 512;
  cfg.p = 3;
  cfg.q = 3;  // 9 != 8 ranks
  HplStats stats;
  w.launch_all(hpl_program(cfg, &stats));
  EXPECT_THROW(w.run(), std::logic_error);
}

TEST(StencilModel, GridMismatchRejected) {
  World w(spec_of(4, 2));
  StencilConfig cfg;
  cfg.px = cfg.py = cfg.pz = 3;  // 27 != 8 ranks
  StencilStats stats;
  w.launch_all(stencil_program(cfg, &stats));
  EXPECT_THROW(w.run(), std::logic_error);
}

TEST(StencilModel, MoreComputeRaisesTotalNotCommShare) {
  auto run = [&](double ns_per_cell) {
    World w(spec_of(4, 2));
    StencilConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 128;
    cfg.px = cfg.py = cfg.pz = 2;
    cfg.iters = 2;
    cfg.ns_per_cell = ns_per_cell;
    StencilStats stats;
    w.launch_all(stencil_program(cfg, &stats));
    w.run();
    return stats.total_us;
  };
  EXPECT_GT(run(2.0), run(0.5));
}

TEST(P3dfftModel, ExplicitGridHonored) {
  World w(spec_of(4, 2));
  P3dfftConfig cfg;
  cfg.nx = cfg.ny = 32;
  cfg.nz = 64;
  cfg.prow = 2;
  cfg.pcol = 4;
  cfg.iters = 1;
  P3dfftStats stats;
  w.launch_all(p3dfft_program(cfg, &stats));
  w.run();
  EXPECT_GT(stats.total_us, 0.0);
  // Row message size: local bytes / pcol.
  const std::size_t local_bytes = (32u * 32 * 64 / 8) * 16;
  EXPECT_EQ(stats.bytes_per_pair, local_bytes / 4);
}

TEST(P3dfftModel, LargerGridCostsMore) {
  auto run = [&](int nz) {
    World w(spec_of(4, 2));
    P3dfftConfig cfg;
    cfg.nx = cfg.ny = 32;
    cfg.nz = nz;
    cfg.iters = 1;
    cfg.backend = FftBackend::kProposed;
    P3dfftStats stats;
    w.launch_all(p3dfft_program(cfg, &stats));
    w.run();
    return stats.total_us;
  };
  EXPECT_GT(run(128), run(64));
}

}  // namespace
}  // namespace dpu::apps
