// Tests for the offload framework's Basic Primitives (paper §VI-A, §VII-A):
// RTS/RTR matching on the proxy, cross-GVMI data path, FIN completion, and
// the dual registration caches.
#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/check.h"
#include "common/units.h"
#include "harness/world.h"

namespace dpu::offload {
namespace {

using harness::Rank;
using harness::World;

machine::ClusterSpec small_spec(int nodes = 2, int ppn = 2, int proxies = 1) {
  machine::ClusterSpec s;
  s.nodes = nodes;
  s.host_procs_per_node = ppn;
  s.proxies_per_dpu = proxies;
  return s;
}

TEST(OffloadBasic, SendRecvMovesBytesEndToEnd) {
  World w(small_spec());
  bool checked = false;
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(8_KiB);
    r.mem().write(buf, pattern_bytes(21, 8_KiB));
    auto req = co_await r.off->send_offload(buf, 8_KiB, 2, 3);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.launch(2, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(8_KiB);
    auto req = co_await r.off->recv_offload(buf, 8_KiB, 0, 3);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(buf, 8_KiB), 21));
    checked = true;
  });
  w.run();
  EXPECT_TRUE(checked);
}

struct SizeCase {
  std::size_t len;
};

class OffloadSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(OffloadSizes, DataIntegrityAcrossSizes) {
  const std::size_t len = GetParam();
  World w(small_spec());
  bool checked = false;
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    r.mem().write(buf, pattern_bytes(len, len));
    auto req = co_await r.off->send_offload(buf, len, 2, 0);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.launch(2, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(len);
    auto req = co_await r.off->recv_offload(buf, len, 0, 0);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(buf, len), len));
    checked = true;
  });
  w.run();
  EXPECT_TRUE(checked);
}

INSTANTIATE_TEST_SUITE_P(Sizes, OffloadSizes,
                         ::testing::Values(1, 64, 4_KiB, 64_KiB, 1_MiB, 8_MiB),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return format_size(i.param);
                         });

TEST(OffloadBasic, RtrBeforeRtsMatches) {
  // Receiver posts first; the RTR waits in the proxy's receive queue until
  // the RTS arrives (fig. 8 path).
  World w(small_spec());
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    co_await r.compute(200_us);  // delay the send
    const auto buf = r.mem().alloc(4_KiB);
    r.mem().write(buf, pattern_bytes(9, 4_KiB));
    auto req = co_await r.off->send_offload(buf, 4_KiB, 2, 1);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.launch(2, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(4_KiB);
    auto req = co_await r.off->recv_offload(buf, 4_KiB, 0, 1);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(buf, 4_KiB), 9));
  });
  w.run();
}

TEST(OffloadBasic, TagsDisambiguateOnProxy) {
  World w(small_spec());
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto a = r.mem().alloc(1_KiB);
    const auto b = r.mem().alloc(1_KiB);
    r.mem().write(a, pattern_bytes(1, 1_KiB));
    r.mem().write(b, pattern_bytes(2, 1_KiB));
    auto q1 = co_await r.off->send_offload(a, 1_KiB, 2, 10);
    auto q2 = co_await r.off->send_offload(b, 1_KiB, 2, 20);
    EXPECT_EQ(co_await r.off->wait(q1), Status::kOk);
    EXPECT_EQ(co_await r.off->wait(q2), Status::kOk);
  });
  w.launch(2, [&](Rank& r) -> sim::Task<void> {
    const auto b = r.mem().alloc(1_KiB);
    const auto a = r.mem().alloc(1_KiB);
    auto q2 = co_await r.off->recv_offload(b, 1_KiB, 0, 20);
    auto q1 = co_await r.off->recv_offload(a, 1_KiB, 0, 10);
    EXPECT_EQ(co_await r.off->wait(q1), Status::kOk);
    EXPECT_EQ(co_await r.off->wait(q2), Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(a, 1_KiB), 1));
    EXPECT_TRUE(check_pattern(r.mem().read(b, 1_KiB), 2));
  });
  w.run();
}

TEST(OffloadBasic, TransferProgressesWhileBothHostsCompute) {
  // The whole point of the framework: after posting, both hosts compute for
  // a long time and the transfer still completes (proxy-driven, perfect
  // overlap) — compare MpiP2P.RendezvousBlockedByBusyReceiverCpu.
  World w(small_spec());
  SimTime send_done = 0;
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(256_KiB);
    auto req = co_await r.off->send_offload(buf, 256_KiB, 2, 0);
    co_await r.compute(10_ms);
    const SimTime before_wait = r.world->now();
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    send_done = r.world->now();
    // Wait returned (almost) immediately: the proxy finished long ago.
    EXPECT_LT(send_done - before_wait, 100_us);
  });
  w.launch(2, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(256_KiB);
    auto req = co_await r.off->recv_offload(buf, 256_KiB, 0, 0);
    co_await r.compute(10_ms);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.run();
}

TEST(OffloadBasic, TestPollsCompletionFlag) {
  World w(small_spec());
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(64_KiB);
    auto req = co_await r.off->send_offload(buf, 64_KiB, 2, 0);
    EXPECT_FALSE(co_await r.off->test(req));  // cannot be done instantly
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    EXPECT_TRUE(co_await r.off->test(req));
  });
  w.launch(2, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(64_KiB);
    auto req = co_await r.off->recv_offload(buf, 64_KiB, 0, 0);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.run();
}

TEST(OffloadBasic, GvmiCachesAmortizeRepeatedBuffers) {
  World w(small_spec());
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(128_KiB);
    for (int i = 0; i < 6; ++i) {
      auto req = co_await r.off->send_offload(buf, 128_KiB, 2, i);
      EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    }
    // Host-side GVMI cache: one miss, five hits.
    EXPECT_EQ(r.off->gvmi_cache().stats().misses, 1u);
    EXPECT_EQ(r.off->gvmi_cache().stats().hits, 5u);
    // DPU-side cache on my proxy: same shape.
    auto& proxy = r.world->offload().proxy(r.world->spec().proxy_for_host(0));
    EXPECT_EQ(proxy.gvmi_cache().stats().misses, 1u);
    EXPECT_EQ(proxy.gvmi_cache().stats().hits, 5u);
  });
  w.launch(2, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(128_KiB);
    for (int i = 0; i < 6; ++i) {
      auto req = co_await r.off->recv_offload(buf, 128_KiB, 0, i);
      EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    }
    EXPECT_EQ(r.off->ib_cache().stats().misses, 1u);
  });
  w.run();
}

TEST(OffloadBasic, IntraNodePairWorksThroughLoopback) {
  World w(small_spec());
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(16_KiB);
    r.mem().write(buf, pattern_bytes(4, 16_KiB));
    auto req = co_await r.off->send_offload(buf, 16_KiB, 1, 0);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.launch(1, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(16_KiB);
    auto req = co_await r.off->recv_offload(buf, 16_KiB, 0, 0);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
    EXPECT_TRUE(check_pattern(r.mem().read(buf, 16_KiB), 4));
  });
  w.run();
}

TEST(OffloadBasic, ProxyMappingDistributesHosts) {
  // With 4 PPN and 2 proxies per DPU, hosts 0,2 map to proxy 0 and hosts
  // 1,3 map to proxy 1 (paper's modulo rule); pairwise traffic works on
  // both.
  World w(small_spec(2, 4, 2));
  int done = 0;
  for (int r0 = 0; r0 < 4; ++r0) {
    w.launch(r0, [&, r0](Rank& r) -> sim::Task<void> {
      const auto peer = r0 + 4;  // same-index rank on node 1
      const auto s = r.mem().alloc(2_KiB);
      const auto d = r.mem().alloc(2_KiB);
      r.mem().write(s, pattern_bytes(static_cast<std::uint64_t>(r0), 2_KiB));
      auto qs = co_await r.off->send_offload(s, 2_KiB, peer, 0);
      auto qr = co_await r.off->recv_offload(d, 2_KiB, peer, 1);
      EXPECT_EQ(co_await r.off->wait(qs), Status::kOk);
      EXPECT_EQ(co_await r.off->wait(qr), Status::kOk);
      EXPECT_TRUE(check_pattern(r.mem().read(d, 2_KiB), static_cast<std::uint64_t>(peer)));
      ++done;
    });
  }
  for (int r1 = 4; r1 < 8; ++r1) {
    w.launch(r1, [&, r1](Rank& r) -> sim::Task<void> {
      const auto peer = r1 - 4;
      const auto s = r.mem().alloc(2_KiB);
      const auto d = r.mem().alloc(2_KiB);
      r.mem().write(s, pattern_bytes(static_cast<std::uint64_t>(r1), 2_KiB));
      auto qr = co_await r.off->recv_offload(d, 2_KiB, peer, 0);
      auto qs = co_await r.off->send_offload(s, 2_KiB, peer, 1);
      EXPECT_EQ(co_await r.off->wait(qr), Status::kOk);
      EXPECT_EQ(co_await r.off->wait(qs), Status::kOk);
      EXPECT_TRUE(check_pattern(r.mem().read(d, 2_KiB), static_cast<std::uint64_t>(peer)));
      ++done;
    });
  }
  w.run();
  EXPECT_EQ(done, 8);
}

TEST(OffloadBasic, ReceiveBufferTooSmallFaults) {
  World w(small_spec());
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(8_KiB);
    auto req = co_await r.off->send_offload(buf, 8_KiB, 2, 0);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  w.launch(2, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(4_KiB);
    auto req = co_await r.off->recv_offload(buf, 4_KiB, 0, 0);
    EXPECT_EQ(co_await r.off->wait(req), Status::kOk);
  });
  EXPECT_THROW(w.run(), SimError);
}

TEST(OffloadBasic, SelfSendRejected) {
  World w(small_spec());
  w.launch(0, [&](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(1_KiB);
    bool threw = false;
    try {
      (void)co_await r.off->send_offload(buf, 1_KiB, 0, 0);
    } catch (const SimError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  });
  w.run();
}

}  // namespace
}  // namespace dpu::offload
