// Halo exchange (the §VIII-A scenario): a 2x2x2 process grid exchanges
// stencil faces every iteration. Inter-node faces ride the offload
// framework's Basic Primitives (proxy-progressed); intra-node faces stay on
// shared-memory MPI — mirroring how a production library would mix paths.
//
//   $ ./halo_exchange
#include <iostream>

#include "apps/stencil3d.h"
#include "common/units.h"
#include "harness/world.h"

using namespace dpu;
using apps::StencilBackend;
using apps::StencilConfig;
using apps::StencilStats;

int main() {
  // One rank per node: every face is inter-node, the offloadable case.
  machine::ClusterSpec spec;
  spec.nodes = 8;
  spec.host_procs_per_node = 1;
  spec.proxies_per_dpu = 1;

  auto run = [&](StencilBackend backend) {
    harness::World world(spec);
    StencilConfig cfg;
    cfg.nx = cfg.ny = cfg.nz = 256;
    cfg.px = cfg.py = cfg.pz = 2;
    cfg.iters = 4;
    cfg.ns_per_cell = 0.04;  // comm-bound regime: the offload win is visible
    cfg.backend = backend;
    StencilStats stats;
    world.launch_all(stencil_program(cfg, &stats));
    world.run();
    return stats;
  };

  const auto mpi = run(StencilBackend::kMpi);
  const auto off = run(StencilBackend::kOffload);
  std::cout << "3-D halo exchange, 256^3 grid on a 2x2x2 rank grid\n"
            << "  host-MPI backend : " << mpi.total_us << " us/iteration\n"
            << "  offload backend  : " << off.total_us << " us/iteration\n"
            << "  improvement      : " << 100.0 * (1.0 - off.total_us / mpi.total_us)
            << " %\n"
            << "(compute per iteration: " << mpi.compute_us << " us, overlapped)\n";
  return 0;
}
