// The paper's Listing 5: a ring broadcast recorded with Group Primitives
// and offloaded in one shot, overlapping a compute phase.
//
// Every rank records its piece of the pattern (recv-from-left, local
// barrier, send-to-right), calls Group_Offload_call, computes, and
// Group_Waits. The DPU proxies chain the hops with zero host involvement —
// compare the wait times printed at the end (they are ~zero).
//
//   $ ./ring_broadcast
#include <iostream>

#include "common/check.h"
#include "common/bytes.h"
#include "common/units.h"
#include "harness/world.h"

using namespace dpu;
using harness::Rank;
using harness::World;

int main() {
  constexpr int kRanks = 6;
  constexpr std::size_t kLen = 128_KiB;

  machine::ClusterSpec spec;
  spec.nodes = kRanks;
  spec.host_procs_per_node = 1;
  spec.proxies_per_dpu = 1;
  World world(spec);

  world.launch_all([](Rank& r) -> sim::Task<void> {
    const int n = r.world->spec().total_host_ranks();
    const int me = r.rank;
    const int left = (me - 1 + n) % n;
    const int right = (me + 1) % n;
    const auto buf = r.mem().alloc(kLen);
    if (me == 0) r.mem().write(buf, pattern_bytes(7, kLen));

    // Record the pattern (Listing 5).
    auto req = r.off->group_start();
    if (me == 0) {
      r.off->group_send(req, buf, kLen, right, /*tag=*/4);
    } else {
      r.off->group_recv(req, buf, kLen, left, /*tag=*/4);
      if (me != n - 1) {
        r.off->group_barrier(req);  // Local_barrier_Goffload: order recv -> send
        r.off->group_send(req, buf, kLen, right, /*tag=*/4);
      }
    }
    r.off->group_end(req);

    // Offload the whole pattern, then overlap with compute.
    co_await r.off->group_call(req);
    co_await r.compute(5_ms);
    const SimTime before_wait = r.world->now();
    require(co_await r.off->group_wait(req) == offload::Status::kOk,
            "offloaded op did not complete cleanly");
    const auto waited = to_us(r.world->now() - before_wait);

    std::cout << "[rank " << me << "] payload "
              << (check_pattern(r.mem().read(buf, kLen), 7) ? "ok" : "CORRUPT")
              << ", time blocked in Group_Wait: " << waited << " us\n";
  });

  world.run();
  std::cout << "ring completed during the compute window; simulated time "
            << to_us(world.now()) << " us\n";
  return 0;
}
