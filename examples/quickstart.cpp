// Quickstart: the paper's Listing 3 — ping-pong with Basic Primitives.
//
// Builds a 2-node simulated cluster, launches one rank per node, and moves
// a real payload through the full offload pipeline: host GVMI registration,
// RTS/RTR control messages to the DPU proxy, cross-registration, the
// proxy's on-behalf RDMA write, and FIN completion counters.
//
//   $ ./quickstart
#include <iostream>

#include "common/check.h"
#include "common/bytes.h"
#include "common/units.h"
#include "harness/world.h"

using namespace dpu;
using harness::Rank;
using harness::World;

int main() {
  machine::ClusterSpec spec;
  spec.nodes = 2;
  spec.host_procs_per_node = 1;
  spec.proxies_per_dpu = 1;
  World world(spec);

  constexpr std::size_t kLen = 64_KiB;

  // Rank 0: Send_Offload + Recv_Offload + Wait (Listing 3).
  world.launch(0, [](Rank& r) -> sim::Task<void> {
    const auto sbuf = r.mem().alloc(kLen);
    const auto rbuf = r.mem().alloc(kLen);
    r.mem().write(sbuf, pattern_bytes(/*seed=*/1, kLen));

    auto send = co_await r.off->send_offload(sbuf, kLen, /*dst=*/1, /*tag=*/3);
    auto recv = co_await r.off->recv_offload(rbuf, kLen, /*src=*/1, /*tag=*/4);
    require(co_await r.off->wait(send) == offload::Status::kOk,
            "offloaded op did not complete cleanly");
    require(co_await r.off->wait(recv) == offload::Status::kOk,
            "offloaded op did not complete cleanly");

    std::cout << "[rank 0] round trip done at t=" << to_us(r.world->now())
              << " us, payload "
              << (check_pattern(r.mem().read(rbuf, kLen), 2) ? "verified" : "CORRUPT")
              << "\n";
  });

  // Rank 1: mirror side.
  world.launch(1, [](Rank& r) -> sim::Task<void> {
    const auto sbuf = r.mem().alloc(kLen);
    const auto rbuf = r.mem().alloc(kLen);
    r.mem().write(sbuf, pattern_bytes(/*seed=*/2, kLen));

    auto recv = co_await r.off->recv_offload(rbuf, kLen, /*src=*/0, /*tag=*/3);
    auto send = co_await r.off->send_offload(sbuf, kLen, /*dst=*/0, /*tag=*/4);
    require(co_await r.off->wait(recv) == offload::Status::kOk,
            "offloaded op did not complete cleanly");
    require(co_await r.off->wait(send) == offload::Status::kOk,
            "offloaded op did not complete cleanly");

    std::cout << "[rank 1] payload "
              << (check_pattern(r.mem().read(rbuf, kLen), 1) ? "verified" : "CORRUPT")
              << ", GVMI cache: " << r.off->gvmi_cache().stats().misses << " miss / "
              << r.off->gvmi_cache().stats().hits << " hit\n";
  });

  world.run();
  std::cout << "simulated time: " << to_us(world.now()) << " us\n"
            << world.stats_summary() << "\n";
  return 0;
}
