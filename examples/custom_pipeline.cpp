// A communication pattern no MPI collective expresses: a two-stage pipeline
// with a fan-out — demonstrating that Group Primitives offload ARBITRARY
// dependency graphs, the paper's central API claim.
//
//   rank 0 --(A)--> rank 1 --(barrier)--> rank 2 and rank 3   (fan-out)
//   rank 2 --(barrier)--> rank 0                              (ack back)
//
// Every edge is recorded up front; the whole DAG executes on the DPU
// proxies while the hosts compute.
//
//   $ ./custom_pipeline
#include <iostream>

#include "common/check.h"
#include "common/bytes.h"
#include "common/units.h"
#include "harness/world.h"

using namespace dpu;
using harness::Rank;
using harness::World;

int main() {
  machine::ClusterSpec spec;
  spec.nodes = 4;
  spec.host_procs_per_node = 1;
  spec.proxies_per_dpu = 1;
  World world(spec);
  constexpr std::size_t kLen = 32_KiB;

  world.launch(0, [](Rank& r) -> sim::Task<void> {
    const auto data = r.mem().alloc(kLen);
    const auto ack = r.mem().alloc(kLen);
    r.mem().write(data, pattern_bytes(11, kLen));
    auto req = r.off->group_start();
    r.off->group_send(req, data, kLen, 1, 0);
    r.off->group_recv(req, ack, kLen, 2, 9);  // ack arrives after the fan-out
    r.off->group_end(req);
    co_await r.off->group_call(req);
    co_await r.compute(4_ms);
    require(co_await r.off->group_wait(req) == offload::Status::kOk,
            "offloaded op did not complete cleanly");
    std::cout << "[0] ack " << (check_pattern(r.mem().read(ack, kLen), 11) ? "ok" : "BAD")
              << " at t=" << to_us(r.world->now()) << " us\n";
  });

  world.launch(1, [](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(kLen);
    auto req = r.off->group_start();
    r.off->group_recv(req, buf, kLen, 0, 0);
    r.off->group_barrier(req);  // forward only after the data arrived
    r.off->group_send(req, buf, kLen, 2, 1);
    r.off->group_send(req, buf, kLen, 3, 2);
    r.off->group_end(req);
    co_await r.off->group_call(req);
    co_await r.compute(4_ms);
    require(co_await r.off->group_wait(req) == offload::Status::kOk,
            "offloaded op did not complete cleanly");
    std::cout << "[1] fan-out done\n";
  });

  world.launch(2, [](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(kLen);
    auto req = r.off->group_start();
    r.off->group_recv(req, buf, kLen, 1, 1);
    r.off->group_barrier(req);
    r.off->group_send(req, buf, kLen, 0, 9);  // ack the source
    r.off->group_end(req);
    co_await r.off->group_call(req);
    co_await r.compute(4_ms);
    require(co_await r.off->group_wait(req) == offload::Status::kOk,
            "offloaded op did not complete cleanly");
    std::cout << "[2] " << (check_pattern(r.mem().read(buf, kLen), 11) ? "ok" : "BAD")
              << "\n";
  });

  world.launch(3, [](Rank& r) -> sim::Task<void> {
    const auto buf = r.mem().alloc(kLen);
    auto req = r.off->group_start();
    r.off->group_recv(req, buf, kLen, 1, 2);
    r.off->group_end(req);
    co_await r.off->group_call(req);
    co_await r.compute(4_ms);
    require(co_await r.off->group_wait(req) == offload::Status::kOk,
            "offloaded op did not complete cleanly");
    std::cout << "[3] " << (check_pattern(r.mem().read(buf, kLen), 11) ? "ok" : "BAD")
              << "\n";
  });

  world.run();
  std::cout << "whole DAG ran on the proxies during the 4 ms compute; t="
            << to_us(world.now()) << " us\n";
  return 0;
}
